"""C-compiled kernel backend: a tiny shared library built with the system cc.

This backend makes ``engine="compiled"`` real on boxes without Numba but
with any C compiler on ``PATH`` (the common case for CI runners and dev
machines).  The embedded C source below is compiled once into a cache
directory keyed by the source hash and loaded through :mod:`ctypes`; a
failed probe (no compiler, compile error, load error) makes :func:`load`
return ``None`` and the registry falls back to the NumPy reference tier.

Bit-identity notes:

- The library is compiled with ``-ffp-contract=off`` so ``x * scale +
  shift`` rounds twice exactly like the NumPy composition — gcc's default
  ``-ffp-contract=fast`` would fuse it into one FMA rounding.
- The conv forward does **not** ship its own GEMM.  NumPy's ``matmul``
  result depends on the exact BLAS build, so the library instead receives
  a function pointer to the *same* ILP64 ``cblas_dgemm`` symbol NumPy's
  bundled OpenBLAS exports and calls it once per sample — the identical
  per-sample GEMM sequence ``np.matmul(W, cols)`` performs.  When the
  symbol cannot be resolved the C path still builds the columns and the
  Python wrapper finishes with ``np.matmul``.
- ``col2im`` accumulates taps in the same ``(i, j)`` row-major order as
  the reference loop, and integer kernels are exact by construction.
"""

from __future__ import annotations

import ctypes
import glob
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Callable, Dict, Optional

import numpy as np

from repro.nn.kernels import reference

_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <string.h>

typedef void (*dgemm64_t)(int order, int transa, int transb,
                          int64_t m, int64_t n, int64_t k,
                          double alpha, const double *a, int64_t lda,
                          const double *b, int64_t ldb,
                          double beta, double *c, int64_t ldc);

static dgemm64_t dgemm64 = 0;

void repro_set_dgemm64(void *fn) { dgemm64 = (dgemm64_t)fn; }
int repro_has_dgemm(void) { return dgemm64 != 0; }

/* Contiguous copy tuned for conv-sized rows: feature maps in this library
 * are tiny (ow of 2..32 doubles), where a plain vectorizable loop beats a
 * memcpy call; long rows still take the libc bulk path. */
static inline void copy_row(double *dst, const double *src, int64_t count)
{
    if (count <= 32) {
        for (int64_t t = 0; t < count; t++)
            dst[t] = src[t];
    } else {
        memcpy(dst, src, (size_t)count * sizeof(double));
    }
}

static inline void zero_row(double *dst, int64_t count)
{
    if (count <= 32) {
        for (int64_t t = 0; t < count; t++)
            dst[t] = 0.0;
    } else {
        memset(dst, 0, (size_t)count * sizeof(double));
    }
}

/* Max padded-plane size (doubles) eligible for the staged fast path. */
#define REPRO_PAD_BUF 4096

/* Fully specialised 3x3/stride-1/pad-1 im2col for one sample at a fixed
 * plane size: every loop bound is a compile-time constant, so the
 * compiler unrolls the tap nest into straight-line vector moves.  These
 * cover the plane sizes CIFAR-scale nets actually run (2x2, 4x4, 8x8,
 * 16x16, 32x32). */
#define REPRO_DEF_IM2COL_K3P1(NAME, H, W) \
static void NAME(const double *x, double *cols, int64_t c) \
{ \
    double pb[(H + 2) * (W + 2)]; \
    for (int64_t t = 0; t < (H + 2) * (W + 2); t++) \
        pb[t] = 0.0; \
    for (int64_t ch = 0; ch < c; ch++) { \
        const double *s = x + ch * (H) * (W); \
        for (int64_t y = 0; y < (H); y++) \
            for (int64_t xx = 0; xx < (W); xx++) \
                pb[(y + 1) * ((W) + 2) + xx + 1] = s[y * (W) + xx]; \
        double *d = cols + ch * 9 * (H) * (W); \
        for (int64_t i = 0; i < 3; i++) { \
            for (int64_t j = 0; j < 3; j++) { \
                double *dd = d + (i * 3 + j) * (H) * (W); \
                const double *pp = pb + i * ((W) + 2) + j; \
                for (int64_t oy = 0; oy < (H); oy++) \
                    for (int64_t ox = 0; ox < (W); ox++) \
                        dd[oy * (W) + ox] = pp[oy * ((W) + 2) + ox]; \
            } \
        } \
    } \
}

REPRO_DEF_IM2COL_K3P1(im2col_k3p1_2, 2, 2)
REPRO_DEF_IM2COL_K3P1(im2col_k3p1_4, 4, 4)
REPRO_DEF_IM2COL_K3P1(im2col_k3p1_8, 8, 8)
REPRO_DEF_IM2COL_K3P1(im2col_k3p1_16, 16, 16)
REPRO_DEF_IM2COL_K3P1(im2col_k3p1_32, 32, 32)

/* One sample of im2col with fused zero padding: x (C,H,W) -> cols (C*kh*kw, oh*ow). */
static void im2col_sample(const double *x, double *cols,
                          int64_t c, int64_t h, int64_t w,
                          int64_t kh, int64_t kw, int64_t stride, int64_t pad,
                          int64_t oh, int64_t ow)
{
    const int64_t plane = h * w;
    const int64_t ncols = oh * ow;
    const int64_t wp = w + 2 * pad;
    const int64_t hp = h + 2 * pad;
    if (kh == 3 && kw == 3 && stride == 1 && pad == 1 && h == w) {
        switch (h) {
        case 2:  im2col_k3p1_2(x, cols, c);  return;
        case 4:  im2col_k3p1_4(x, cols, c);  return;
        case 8:  im2col_k3p1_8(x, cols, c);  return;
        case 16: im2col_k3p1_16(x, cols, c); return;
        case 32: im2col_k3p1_32(x, cols, c); return;
        }
    }
    if (pad > 0 && hp * wp <= REPRO_PAD_BUF) {
        /* Small padded feature maps (the norm for CIFAR-scale nets):
         * stage each channel into a zero-bordered buffer once, turning
         * every tap row into an unconditional copy/gather.  The border
         * is zeroed once per sample — channel interiors always overwrite
         * the same region, never the border. */
        double pad_buf[REPRO_PAD_BUF];
        zero_row(pad_buf, hp * wp);
        for (int64_t ch = 0; ch < c; ch++) {
            const double *src = x + ch * plane;
            for (int64_t y = 0; y < h; y++)
                copy_row(pad_buf + (y + pad) * wp + pad, src + y * w, w);
            double *dst = cols + ch * kh * kw * ncols;
            /* Constant-width tap copies: at CIFAR scale the output row is
             * 2/4/8 doubles, where a loop with a compile-time trip count
             * unrolls into straight-line moves.  REPRO_TAPS_S1 expands the
             * whole stride-1 tap nest for one such width. */
#define REPRO_TAPS_S1(OW) \
            for (int64_t i = 0; i < kh; i++) { \
                for (int64_t j = 0; j < kw; j++) { \
                    double *d = dst + (i * kw + j) * ncols; \
                    const double *p = pad_buf + i * wp + j; \
                    for (int64_t oy = 0; oy < oh; oy++) { \
                        const double *pr = p + oy * wp; \
                        double *dr = d + oy * (OW); \
                        for (int64_t t = 0; t < (OW); t++) \
                            dr[t] = pr[t]; \
                    } \
                } \
            }
            if (stride == 1) {
                switch (ow) {
                case 2: REPRO_TAPS_S1(2); break;
                case 4: REPRO_TAPS_S1(4); break;
                case 8: REPRO_TAPS_S1(8); break;
                case 16: REPRO_TAPS_S1(16); break;
                default: REPRO_TAPS_S1(ow); break;
                }
            } else {
                for (int64_t i = 0; i < kh; i++) {
                    for (int64_t j = 0; j < kw; j++) {
                        double *d = dst + (i * kw + j) * ncols;
                        const double *p = pad_buf + i * wp + j;
                        for (int64_t oy = 0; oy < oh; oy++) {
                            const double *prow = p + oy * stride * wp;
                            double *drow = d + oy * ow;
                            for (int64_t ox = 0; ox < ow; ox++)
                                drow[ox] = prow[ox * stride];
                        }
                    }
                }
            }
#undef REPRO_TAPS_S1
        }
        return;
    }
    for (int64_t ch = 0; ch < c; ch++) {
        const double *src = x + ch * plane;
        for (int64_t i = 0; i < kh; i++) {
            for (int64_t j = 0; j < kw; j++) {
                double *dst = cols + (ch * kh * kw + i * kw + j) * ncols;
                for (int64_t oy = 0; oy < oh; oy++) {
                    const int64_t iy = oy * stride + i - pad;
                    double *row = dst + oy * ow;
                    if (iy < 0 || iy >= h) {
                        zero_row(row, ow);
                        continue;
                    }
                    const double *line = src + iy * w;
                    const int64_t ix0 = j - pad;
                    if (stride == 1) {
                        int64_t ox = 0;
                        int64_t in_end = ow;
                        for (; ox < ow && ix0 + ox < 0; ox++)
                            row[ox] = 0.0;
                        if (ix0 + in_end > w)
                            in_end = w - ix0;
                        if (in_end > ox) {
                            copy_row(row + ox, line + ix0 + ox, in_end - ox);
                            ox = in_end;
                        }
                        for (; ox < ow; ox++)
                            row[ox] = 0.0;
                    } else {
                        for (int64_t ox = 0; ox < ow; ox++) {
                            const int64_t ix = ox * stride + ix0;
                            row[ox] = (ix >= 0 && ix < w) ? line[ix] : 0.0;
                        }
                    }
                }
            }
        }
    }
}

/* im2col with fused zero padding: x (N,C,H,W) -> cols (N, C*kh*kw, oh*ow). */
void repro_im2col(const double *x, double *cols,
                  int64_t n, int64_t c, int64_t h, int64_t w,
                  int64_t kh, int64_t kw, int64_t stride, int64_t pad,
                  int64_t oh, int64_t ow)
{
    for (int64_t b = 0; b < n; b++)
        im2col_sample(x + b * c * h * w, cols + b * c * kh * kw * oh * ow,
                      c, h, w, kh, kw, stride, pad, oh, ow);
}

/* Adjoint scatter-add into a zero-initialised padded buffer (N,C,hp,wp).
 * Taps accumulate in (i, j) row-major order for every output element,
 * matching the reference loop's floating-point addition order. */
void repro_col2im(const double *cols, double *padded,
                  int64_t n, int64_t c, int64_t hp, int64_t wp,
                  int64_t kh, int64_t kw, int64_t stride,
                  int64_t oh, int64_t ow)
{
    const int64_t ncols = oh * ow;
    const int64_t plane = hp * wp;
    for (int64_t b = 0; b < n; b++) {
        for (int64_t ch = 0; ch < c; ch++) {
            double *dst = padded + (b * c + ch) * plane;
            for (int64_t i = 0; i < kh; i++) {
                for (int64_t j = 0; j < kw; j++) {
                    const double *src = cols + ((b * c + ch) * kh * kw + i * kw + j) * ncols;
                    for (int64_t oy = 0; oy < oh; oy++) {
                        double *line = dst + (i + oy * stride) * wp + j;
                        const double *srow = src + oy * ow;
                        if (stride == 1) {
                            for (int64_t ox = 0; ox < ow; ox++)
                                line[ox] += srow[ox];
                        } else {
                            for (int64_t ox = 0; ox < ow; ox++)
                                line[ox * stride] += srow[ox];
                        }
                    }
                }
            }
        }
    }
}

/* Fused forward: per sample, im2col straight into the cols buffer and a
 * dgemm on the still-cache-warm columns, then a separate bias pass.
 * Requires a dgemm pointer (caller checks repro_has_dgemm first). */
void repro_conv2d_forward(const double *x, const double *wmat, const double *bias,
                          double *cols, double *out,
                          int64_t n, int64_t c, int64_t h, int64_t w,
                          int64_t f, int64_t kh, int64_t kw,
                          int64_t stride, int64_t pad, int64_t oh, int64_t ow)
{
    const int64_t kdim = c * kh * kw;
    const int64_t ncols = oh * ow;
    for (int64_t b = 0; b < n; b++) {
        double *cols_b = cols + b * kdim * ncols;
        im2col_sample(x + b * c * h * w, cols_b, c, h, w, kh, kw, stride, pad, oh, ow);
        /* CblasRowMajor=101, CblasNoTrans=111: same per-sample GEMM that
         * np.matmul's broadcast path issues. */
        dgemm64(101, 111, 111, f, ncols, kdim, 1.0,
                wmat, kdim, cols_b, ncols,
                0.0, out + b * f * ncols, ncols);
    }
    if (bias) {
        for (int64_t b = 0; b < n; b++) {
            for (int64_t ff = 0; ff < f; ff++) {
                const double bv = bias[ff];
                double *row = out + (b * f + ff) * ncols;
                for (int64_t l = 0; l < ncols; l++)
                    row[l] += bv;
            }
        }
    }
}

/* Folded inference batch-norm on (N, C, S): multiply rounds, add rounds.
 * Built with -ffp-contract=off so the two roundings are never fused. */
void repro_bn_fold(const double *x, const double *scale, const double *shift,
                   double *out, int64_t n, int64_t c, int64_t s)
{
    for (int64_t b = 0; b < n; b++) {
        for (int64_t ch = 0; ch < c; ch++) {
            const double sc = scale[ch];
            const double sh = shift[ch];
            const double *src = x + (b * c + ch) * s;
            double *dst = out + (b * c + ch) * s;
            for (int64_t i = 0; i < s; i++) {
                const double t = src[i] * sc;
                dst[i] = t + sh;
            }
        }
    }
}

/* Fully folded inference batch-norm: derive scale/shift from the layer's
 * raw statistics, then apply.  Every arithmetic step mirrors the NumPy
 * composition elementwise (add, sqrt, divide, multiply, subtract are all
 * correctly rounded IEEE ops), so the result is bit-identical to
 * computing scale/shift with NumPy and calling repro_bn_fold. */
void repro_bn_infer(const double *x, const double *weight, const double *bias,
                    const double *mean, const double *var, double eps,
                    double *out, int64_t n, int64_t c, int64_t s)
{
    for (int64_t b = 0; b < n; b++) {
        for (int64_t ch = 0; ch < c; ch++) {
            const double inv = 1.0 / sqrt(var[ch] + eps);
            const double sc = weight[ch] * inv;
            const double sh = bias[ch] - mean[ch] * sc;
            const double *src = x + (b * c + ch) * s;
            double *dst = out + (b * c + ch) * s;
            for (int64_t i = 0; i < s; i++) {
                const double t = src[i] * sc;
                dst[i] = t + sh;
            }
        }
    }
}

/* ReLU with multiply-by-mask semantics: x * (x > 0) elementwise, so
 * negative inputs map to -0.0 and NaN propagates — bit-identical to the
 * NumPy mask composition, in one pass instead of two. */
void repro_relu(const double *x, double *out, int64_t size)
{
    for (int64_t i = 0; i < size; i++) {
        const double v = x[i];
        /* Branchless: (v > 0.0) is exactly 0.0 or 1.0, so the multiply
         * reproduces the mask composition (and vectorizes cleanly). */
        out[i] = v * (double)(v > 0.0);
    }
}

/* Signed value change for flipping every bit of every value: exact int64. */
void repro_delta_table(const int64_t *values, int64_t size, int64_t num_bits,
                       int64_t *table)
{
    const int64_t mask = ((int64_t)1 << num_bits) - 1;
    for (int64_t b = 0; b < num_bits; b++) {
        const int64_t mag = (int64_t)1 << b;
        const int sign_bit = (b == num_bits - 1);
        int64_t *row = table + b * size;
        for (int64_t i = 0; i < size; i++) {
            const int64_t bit = ((values[i] & mask) >> b) & 1;
            const int64_t delta = bit ? -mag : mag;
            row[i] = sign_bit ? -delta : delta;
        }
    }
}
"""

#: ``-ffp-contract=off -fno-fast-math`` are the bit-identity guarantees (no
#: FMA fusion, no algebraic rewrites); with those pinned, ``-march=native``
#: only widens per-element IEEE ops and stays exact.  It is dropped
#: automatically when the local compiler rejects it.
_CFLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math")
_ARCH_FLAGS = ("-march=native",)
_DGEMM_SYMBOLS = ("scipy_cblas_dgemm64_", "cblas_dgemm64_")

_i64 = ctypes.c_int64
_ptr = ctypes.c_void_p


def _compiler() -> Optional[str]:
    override = os.environ.get("CC")
    if override:
        return override if shutil.which(override) else None
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _cache_dir() -> str:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return override
    home = os.path.expanduser("~")
    if home and home != "~":
        return os.path.join(home, ".cache", "repro-kernels")
    return os.path.join(tempfile.gettempdir(), "repro-kernels")


def _build_library() -> Optional[str]:
    compiler = _compiler()
    if compiler is None:
        return None
    digest = hashlib.sha256(
        "\x00".join((_SOURCE, *_CFLAGS, *_ARCH_FLAGS)).encode()
    ).hexdigest()[:16]
    directory = _cache_dir()
    library = os.path.join(directory, f"repro-kernels-{digest}.so")
    if os.path.exists(library):
        return library
    try:
        os.makedirs(directory, exist_ok=True)
        source = os.path.join(directory, f"repro-kernels-{digest}.c")
        with open(source, "w") as handle:
            handle.write(_SOURCE)
        scratch = library + f".tmp{os.getpid()}"
        try:
            subprocess.run(
                [compiler, *_CFLAGS, *_ARCH_FLAGS, "-o", scratch, source, "-lm"],
                check=True, capture_output=True, timeout=120,
            )
        except subprocess.CalledProcessError:
            subprocess.run(
                [compiler, *_CFLAGS, "-o", scratch, source, "-lm"],
                check=True, capture_output=True, timeout=120,
            )
        os.replace(scratch, library)
    except (OSError, subprocess.SubprocessError):
        return None
    return library


def _dgemm_pointer() -> Optional[ctypes.c_void_p]:
    """Resolve NumPy's own ILP64 ``cblas_dgemm`` so C calls the same GEMM."""
    site_dir = os.path.dirname(os.path.dirname(np.__file__))
    patterns = (
        os.path.join(site_dir, "numpy.libs", "libscipy_openblas*"),
        os.path.join(site_dir, "numpy.libs", "libopenblas*"),
        os.path.join(os.path.dirname(np.__file__), ".libs", "libopenblas*"),
    )
    candidates = [path for pattern in patterns for path in sorted(glob.glob(pattern))]
    candidates.append(None)  # symbols already loaded into the process
    for path in candidates:
        try:
            lib = ctypes.CDLL(path)
        except OSError:
            continue
        for symbol in _DGEMM_SYMBOLS:
            function = getattr(lib, symbol, None)
            if function is not None:
                return ctypes.cast(function, ctypes.c_void_p)
    return None


def _bind(library_path: str) -> ctypes.CDLL:
    lib = ctypes.CDLL(library_path)
    lib.repro_set_dgemm64.argtypes = [_ptr]
    lib.repro_set_dgemm64.restype = None
    lib.repro_has_dgemm.argtypes = []
    lib.repro_has_dgemm.restype = ctypes.c_int
    lib.repro_im2col.argtypes = [_ptr, _ptr] + [_i64] * 10
    lib.repro_im2col.restype = None
    lib.repro_col2im.argtypes = [_ptr, _ptr] + [_i64] * 9
    lib.repro_col2im.restype = None
    lib.repro_conv2d_forward.argtypes = [_ptr] * 5 + [_i64] * 11
    lib.repro_conv2d_forward.restype = None
    lib.repro_bn_fold.argtypes = [_ptr] * 4 + [_i64] * 3
    lib.repro_bn_fold.restype = None
    lib.repro_bn_infer.argtypes = [_ptr] * 5 + [ctypes.c_double, _ptr] + [_i64] * 3
    lib.repro_bn_infer.restype = None
    lib.repro_relu.argtypes = [_ptr, _ptr, _i64]
    lib.repro_relu.restype = None
    lib.repro_delta_table.argtypes = [_ptr, _i64, _i64, _ptr]
    lib.repro_delta_table.restype = None
    return lib


def _f64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.float64)


_addressof = ctypes.addressof
_char_from_buffer = ctypes.c_char.from_buffer


def _data(array: np.ndarray) -> int:
    # from_buffer + addressof is ~3x cheaper per call than going through
    # array.ctypes; it only works on writable contiguous buffers, so fall
    # back for read-only views and zero-size arrays.
    try:
        return _addressof(_char_from_buffer(array))
    except (TypeError, BufferError, ValueError):
        return array.ctypes.data


def _make_kernels(lib: ctypes.CDLL) -> Dict[str, Callable]:
    has_gemm = bool(lib.repro_has_dgemm())
    # The wrappers sit on hot loops where even attribute lookups show up in
    # profiles, so the bound C entry points are closed over as locals.
    c_im2col = lib.repro_im2col
    c_col2im = lib.repro_col2im
    c_conv2d = lib.repro_conv2d_forward
    c_bn_fold = lib.repro_bn_fold
    c_bn_infer = lib.repro_bn_infer
    c_relu = lib.repro_relu
    c_delta_table = lib.repro_delta_table
    output_size = reference.conv2d_output_size
    empty = np.empty
    empty_like = np.empty_like

    def im2col(x, kernel, stride, padding, out=None):
        batch, channels, height, width = x.shape
        kh, kw = kernel
        out_h, out_w = output_size(height, width, kernel, stride, padding)
        x = _f64(x)
        if out is None:
            out = empty((batch, channels * kh * kw, out_h * out_w))
        c_im2col(
            _data(x), _data(out), batch, channels, height, width,
            kh, kw, stride, padding, out_h, out_w,
        )
        return out

    def col2im(cols, input_shape, kernel, stride, padding):
        batch, channels, height, width = input_shape
        kh, kw = kernel
        out_h, out_w = output_size(height, width, kernel, stride, padding)
        cols = _f64(cols)
        padded = np.zeros((batch, channels, height + 2 * padding, width + 2 * padding))
        c_col2im(
            _data(cols), _data(padded), batch, channels,
            padded.shape[2], padded.shape[3], kh, kw, stride, out_h, out_w,
        )
        if padding > 0:
            return padded[:, :, padding:-padding, padding:-padding]
        return padded

    def conv2d_forward(x, weight_matrix, bias, kernel, stride, padding, cols_out=None):
        batch, channels, height, width = x.shape
        kh, kw = kernel
        out_h, out_w = output_size(height, width, kernel, stride, padding)
        num_filters = weight_matrix.shape[0]
        cols = cols_out
        if cols is None:
            cols = empty((batch, channels * kh * kw, out_h * out_w))
        if not has_gemm:
            im2col(x, kernel, stride, padding, out=cols)
            out = np.matmul(weight_matrix, cols)
            if bias is not None:
                out += bias.reshape(1, -1, 1)
            return out, cols
        x = _f64(x)
        weight_matrix = _f64(weight_matrix)
        out = empty((batch, num_filters, out_h * out_w))
        bias_ptr = None if bias is None else _data(_f64(bias))
        c_conv2d(
            _data(x), _data(weight_matrix), bias_ptr, _data(cols), _data(out),
            batch, channels, height, width, num_filters,
            kh, kw, stride, padding, out_h, out_w,
        )
        return out, cols

    def bn_fold(x, scale, shift):
        x = _f64(x)
        scale = _f64(scale)
        shift = _f64(shift)
        shape = x.shape
        spatial = 1
        for dim in shape[2:]:
            spatial *= dim
        out = empty_like(x)
        c_bn_fold(
            _data(x), _data(scale), _data(shift), _data(out),
            shape[0], shape[1], spatial,
        )
        return out

    def bn_infer(x, weight, bias, mean, var, eps):
        x = _f64(x)
        shape = x.shape
        spatial = 1
        for dim in shape[2:]:
            spatial *= dim
        out = empty_like(x)
        c_bn_infer(
            _data(x), _data(_f64(weight)), _data(_f64(bias)),
            _data(_f64(mean)), _data(_f64(var)), float(eps),
            _data(out), shape[0], shape[1], spatial,
        )
        return out

    def relu(x):
        x = _f64(x)
        out = empty_like(x)
        c_relu(_data(x), _data(out), x.size)
        return out

    def delta_table(values, num_bits):
        values = np.ascontiguousarray(values, dtype=np.int64)
        table = empty((num_bits, values.size), dtype=np.int64)
        c_delta_table(_data(values), values.size, num_bits, _data(table))
        return table

    def delta_column(value, num_bits):
        values = np.asarray([value], dtype=np.int64)
        column = empty(num_bits, dtype=np.int64)
        c_delta_table(_data(values), 1, num_bits, _data(column))
        return column

    return {
        "im2col": im2col,
        "col2im": col2im,
        "conv2d_forward": conv2d_forward,
        "bn_fold": bn_fold,
        "bn_infer": bn_infer,
        "relu": relu,
        "delta_table": delta_table,
        "delta_column": delta_column,
    }


def load() -> Optional[Dict[str, Callable]]:
    """Build (or reuse) the shared library and return bound kernels.

    Returns ``None`` when no compiler is available or the build fails —
    the registry then falls back to the reference tier.
    """
    library_path = _build_library()
    if library_path is None:
        return None
    try:
        lib = _bind(library_path)
    except OSError:
        return None
    pointer = _dgemm_pointer()
    if pointer is not None:
        lib.repro_set_dgemm64(pointer)
    return _make_kernels(lib)
