"""Kernel registry for the ``engine="compiled"`` op tier.

The op stack (:mod:`repro.nn.functional`, the batch-norm layers,
:mod:`repro.nn.bitops`) routes its hot primitives through this registry.
Three tiers exist per kernel:

- a **compiled backend** implementation (Numba JIT when ``numba`` imports,
  else a C shared library built with the system compiler — see
  :mod:`repro.nn.kernels.numba_backend` / :mod:`repro.nn.kernels.cc`),
- the **reference** NumPy implementation in
  :mod:`repro.nn.kernels.reference`, which is also the vectorized tier's
  code path, and
- nothing at all: a kernel a backend fails to provide silently falls back
  to the reference implementation, per kernel.

Compiled kernels only run while the compiled tier is *active*: inside a
``kernels.use("compiled")`` context (entered by
:class:`repro.core.bfa.BitFlipAttack` when built with
``engine="compiled"``), or process-wide when ``REPRO_DEFAULT_ENGINE`` is
``compiled``.  Activation is thread-local, so a thread-pool worker running
a compiled attack never switches kernels under a concurrent vectorized
one.

Every backend kernel must reproduce the reference bit for bit (the golden
contract of docs/ENGINES.md); :func:`warmup` self-checks each kernel on
small inputs and drops any that disagrees.  Requesting the compiled tier
with no backend available warns once and falls back — never an error.
"""

from __future__ import annotations

import os
import threading
import warnings
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.nn.kernels import reference

#: Names every backend may implement (reference implements them all).
KERNEL_NAMES: Tuple[str, ...] = tuple(reference.KERNELS)

#: Probe order when ``REPRO_KERNEL_BACKEND`` does not force a backend.
BACKEND_ORDER: Tuple[str, ...] = ("numba", "cc")

_lock = threading.RLock()
_state: Dict[str, object] = {
    "probed": False,
    "name": None,
    "kernels": {},
    "warned": False,
    "warmed": False,
    "default": None,
}


def _load_backend(name: str) -> Optional[Dict[str, Callable]]:
    if name == "numba":
        from repro.nn.kernels import numba_backend

        return numba_backend.load()
    if name == "cc":
        from repro.nn.kernels import cc

        return cc.load()
    return None


def _probe() -> None:
    with _lock:
        if _state["probed"]:
            return
        forced = os.environ.get("REPRO_KERNEL_BACKEND", "").strip().lower()
        if forced in ("none", "off"):
            order: Tuple[str, ...] = ()
        elif forced:
            order = (forced,) if forced in BACKEND_ORDER else ()
        else:
            order = BACKEND_ORDER
        for name in order:
            try:
                kernels = _load_backend(name)
            except Exception:
                kernels = None
            if kernels:
                _state["name"] = name
                _state["kernels"] = dict(kernels)
                break
        _state["probed"] = True


def available() -> bool:
    """Whether any compiled backend loaded (numba or the C library)."""
    _probe()
    return bool(_state["kernels"])


def backend_name() -> Optional[str]:
    """Name of the loaded backend (``"numba"`` / ``"cc"``), or ``None``."""
    _probe()
    return _state["name"]


def get_kernel(name: str) -> Callable:
    """Best implementation of ``name``: backend if loaded, else reference.

    Unknown names raise ``KeyError`` — the registry is a closed set.
    """
    if name not in reference.KERNELS:
        raise KeyError(
            f"unknown kernel {name!r}; registered kernels: {sorted(reference.KERNELS)}"
        )
    _probe()
    kernels: Dict[str, Callable] = _state["kernels"]  # type: ignore[assignment]
    return kernels.get(name, reference.KERNELS[name])


def ensure_available(warn: bool = False) -> bool:
    """Availability check that optionally warns (once) about the fallback."""
    if available():
        warmup()
        return True
    if warn and not _state["warned"]:
        _state["warned"] = True
        warnings.warn(
            "engine='compiled' requested but no kernel backend is available "
            "(numba not importable and no C compiler found); falling back to "
            "the vectorized engine — results are bit-identical, just slower",
            RuntimeWarning,
            stacklevel=3,
        )
    return False


# ----------------------------------------------------------------------
# Activation (thread-local, stack-based)
# ----------------------------------------------------------------------
class _Activation(threading.local):
    def __init__(self):
        self.stack = []


_ACTIVE = _Activation()


def _default_enabled() -> bool:
    if _state["default"] is None:
        engine = os.environ.get("REPRO_DEFAULT_ENGINE", "").strip().lower()
        _state["default"] = engine == "compiled" and ensure_available(warn=True)
    return bool(_state["default"])


def compiled_active() -> bool:
    """Whether compiled kernels dispatch on this thread right now."""
    stack = _ACTIVE.stack
    if stack:
        return stack[-1]
    return _default_enabled()


@contextmanager
def use(engine: Optional[str]) -> Iterator[bool]:
    """Activate (or explicitly deactivate) compiled kernels in a scope.

    ``use("compiled")`` enables the backend kernels for the current thread
    — warning once and staying on the reference tier when no backend is
    available.  Any other value (``"vectorized"``, ``"reference"``,
    ``None``) pins the reference tier, overriding a process-wide
    ``REPRO_DEFAULT_ENGINE=compiled`` for the scope.  Yields whether the
    compiled tier is actually active.
    """
    enabled = engine == "compiled" and ensure_available(warn=True)
    _ACTIVE.stack.append(enabled)
    try:
        yield enabled
    finally:
        _ACTIVE.stack.pop()


def active(name: str) -> Optional[Callable]:
    """Backend kernel ``name`` if the compiled tier is active, else ``None``."""
    if not compiled_active():
        return None
    kernels: Dict[str, Callable] = _state["kernels"]  # type: ignore[assignment]
    return kernels.get(name)


# ----------------------------------------------------------------------
# Warmup and self-validation
# ----------------------------------------------------------------------
def warmup() -> Tuple[str, ...]:
    """Compile/JIT every backend kernel once and self-check bit-identity.

    Runs each backend kernel on small inputs (several stride/padding
    variants) and compares against the reference implementation with exact
    equality; a kernel that disagrees is dropped from the backend so its
    call sites fall back to reference.  Idempotent — perf harnesses call
    this before timing so JIT/compile cost never lands in a timed region.

    Returns the names of the validated backend kernels.
    """
    with _lock:
        _probe()
        kernels: Dict[str, Callable] = _state["kernels"]  # type: ignore[assignment]
        if _state["warmed"] or not kernels:
            return tuple(sorted(kernels))
        rng = np.random.default_rng(0)
        x = rng.standard_normal((3, 2, 9, 9))
        weight_matrix = rng.standard_normal((4, 2 * 3 * 3))
        bias = rng.standard_normal(4)
        variants = [(1, 0), (1, 1), (2, 1), (3, 2)]
        values = rng.integers(-128, 128, size=37).astype(np.int64)

        def check(name: str, run: Callable[[Callable], object]) -> None:
            impl = kernels.get(name)
            if impl is None:
                return
            try:
                got = np.asarray(run(impl))
                want = np.asarray(run(reference.KERNELS[name]))
                # Byte-level comparison: catches signed-zero and NaN
                # payload differences that ``array_equal`` would miss.
                identical = (
                    got.dtype == want.dtype
                    and got.shape == want.shape
                    and np.ascontiguousarray(got).tobytes()
                    == np.ascontiguousarray(want).tobytes()
                )
            except Exception:
                identical = False
            if not identical:
                kernels.pop(name, None)

        for stride, padding in variants:
            out_h, out_w = reference.conv2d_output_size(9, 9, (3, 3), stride, padding)
            cols = rng.standard_normal((3, 2 * 3 * 3, out_h * out_w))
            check("im2col", lambda k: k(x, (3, 3), stride, padding))
            check("col2im", lambda k: k(cols, x.shape, (3, 3), stride, padding))
            check(
                "conv2d_forward",
                lambda k: k(x, weight_matrix, bias, (3, 3), stride, padding)[0],
            )
        check(
            "conv2d_forward",
            lambda k: k(x, weight_matrix, None, (3, 3), 1, 1)[0],
        )
        scale = rng.standard_normal(2)
        shift = rng.standard_normal(2)
        check("bn_fold", lambda k: k(x, scale, shift))
        bn_weight = rng.standard_normal(2)
        bn_bias = rng.standard_normal(2)
        bn_mean = rng.standard_normal(2)
        bn_var = rng.random(2) + 0.5
        check("bn_infer", lambda k: k(x, bn_weight, bn_bias, bn_mean, bn_var, 1e-5))
        relu_probe = x.copy()
        relu_probe[0, 0, 0, :3] = (0.0, -0.0, np.nan)
        check("relu", lambda k: k(relu_probe))
        check("delta_table", lambda k: k(values, 8))
        check("delta_table", lambda k: k(values % 4, 3))
        check("delta_column", lambda k: k(-77, 8))
        if not kernels:
            _state["name"] = None
        _state["warmed"] = True
        return tuple(sorted(kernels))


# ----------------------------------------------------------------------
# Per-thread im2col scratch pool
# ----------------------------------------------------------------------
class _Scratch(threading.local):
    def __init__(self):
        self.buffers = {}


_SCRATCH = _Scratch()


def scratch_buffer(name: str, shape: Tuple[int, ...]) -> np.ndarray:
    """A per-thread float64 buffer reused across same-shape requests.

    Callers must fully overwrite the buffer and must not let it escape the
    call — the conv forward only uses it when no backward closure can
    retain the columns (gradient-free forwards), so the next same-shape
    call may freely clobber it.
    """
    buffers = _SCRATCH.buffers
    key = (name, shape)
    buffer = buffers.get(key)
    if buffer is None:
        buffer = np.empty(shape)
        buffers[key] = buffer
    return buffer


def clear_scratch() -> None:
    """Drop this thread's scratch buffers (tests / memory pressure)."""
    _SCRATCH.buffers.clear()


# ----------------------------------------------------------------------
# im2col memo for repeated same-input forwards (compiled tier only)
# ----------------------------------------------------------------------
class _Memo(threading.local):
    def __init__(self):
        self.scope = None


_MEMO = _Memo()


@contextmanager
def im2col_memo() -> Iterator[Optional[dict]]:
    """Reuse im2col columns across forwards that share the same input.

    The stacked suffix cascade (`SuffixEvaluator.peek_many`) runs a trial
    group's flipped stage once per trial on the *same* cached boundary
    array — only the stage's weights differ between runs, and im2col does
    not depend on weights.  Inside this scope :func:`conv2d_forward` keeps
    one ``(input, cols)`` entry per conv signature and skips the gather
    when the same input array object comes back.  Correctness guards:

    - hits require the stored input to be the *same object* (``is``), and
      the scope holds a strong reference so its id cannot be recycled;
    - the caller must not mutate conv inputs in place within the scope
      (stage forwards allocate fresh activations, so this holds);
    - the scratch pool is bypassed for memoised columns — a later
      same-shape conv would clobber a shared scratch buffer.

    Active only while the compiled tier dispatches (the cascade's stage
    loop is a compiled-engine hot path); otherwise a no-op.  Memory is
    bounded at one cols buffer per distinct conv signature and released
    when the scope exits.
    """
    if _MEMO.scope is not None or not compiled_active():
        # Nested scopes keep the outer memo; the reference tiers skip it.
        yield _MEMO.scope
        return
    _MEMO.scope = {}
    try:
        yield _MEMO.scope
    finally:
        _MEMO.scope = None


# ----------------------------------------------------------------------
# Dispatching convenience wrappers used by the op stack
# ----------------------------------------------------------------------
def im2col(x, kernel, stride, padding, out=None):
    """Registry-dispatched im2col (compiled when active, else reference)."""
    impl = active("im2col")
    if impl is None:
        return reference.im2col(x, kernel, stride, padding, out)
    return impl(x, kernel, stride, padding, out)


def col2im(cols, input_shape, kernel, stride, padding):
    """Registry-dispatched col2im (compiled when active, else reference)."""
    impl = active("col2im")
    if impl is None:
        return reference.col2im(cols, input_shape, kernel, stride, padding)
    return impl(cols, input_shape, kernel, stride, padding)


def conv2d_forward(x, weight_matrix, bias, kernel, stride, padding, reuse_scratch=False):
    """Registry-dispatched conv forward returning ``(out, cols)``.

    ``reuse_scratch=True`` routes the im2col columns into the per-thread
    scratch pool — only safe when the caller will not retain ``cols``
    (no backward closure), which :func:`repro.nn.functional.conv2d`
    guarantees by checking grad mode and ``requires_grad``.

    Inside an :func:`im2col_memo` scope, a repeated forward on the *same*
    input array reuses its memoised columns and runs only the GEMM + bias
    (``np.matmul`` per-sample semantics — the identical accumulation the
    backends perform).
    """
    memo = _MEMO.scope
    if memo is not None:
        key = (x.shape, kernel, stride, padding)
        hit = memo.get(key)
        if hit is not None and hit[0] is x:
            cols = hit[1]
            out = np.matmul(weight_matrix, cols)
            if bias is not None:
                out = out + bias.reshape(1, -1, 1)
            return out, cols
    cols_out = None
    if reuse_scratch and memo is None:
        batch, channels = x.shape[0], x.shape[1]
        kh, kw = kernel
        out_h, out_w = reference.conv2d_output_size(
            x.shape[2], x.shape[3], kernel, stride, padding
        )
        cols_out = scratch_buffer(
            "im2col", (batch, channels * kh * kw, out_h * out_w)
        )
    impl = active("conv2d_forward")
    if impl is None:
        result = reference.conv2d_forward(
            x, weight_matrix, bias, kernel, stride, padding, cols_out
        )
    else:
        result = impl(x, weight_matrix, bias, kernel, stride, padding, cols_out)
    if memo is not None:
        memo[(x.shape, kernel, stride, padding)] = (x, result[1])
    return result


def bn_fold(x, scale, shift):
    """Registry-dispatched folded batch-norm ``x * scale + shift``."""
    impl = active("bn_fold")
    if impl is None:
        return reference.bn_fold(x, scale, shift)
    return impl(x, scale, shift)


def bn_infer(x, weight, bias, mean, var, eps):
    """Registry-dispatched inference batch-norm from raw statistics."""
    impl = active("bn_infer")
    if impl is None:
        return reference.bn_infer(x, weight, bias, mean, var, eps)
    return impl(x, weight, bias, mean, var, eps)


def relu(x):
    """Registry-dispatched mask-multiply ReLU."""
    impl = active("relu")
    if impl is None:
        return reference.relu(x)
    return impl(x)


def delta_table(values, num_bits):
    """Registry-dispatched flip-delta table construction."""
    impl = active("delta_table")
    if impl is None:
        return reference.delta_table(values, num_bits)
    return impl(values, num_bits)


def delta_column(value, num_bits):
    """Registry-dispatched single-column flip-delta recompute."""
    impl = active("delta_column")
    if impl is None:
        return reference.delta_column(value, num_bits)
    return impl(value, num_bits)


def _reset_for_tests() -> None:
    """Forget probed backends, warnings and scratch state (test helper)."""
    with _lock:
        _state.update(
            probed=False, name=None, kernels={}, warned=False, warmed=False, default=None
        )
    _ACTIVE.stack.clear()
    clear_scratch()
