"""Resilience primitives: retries, deadlines, breakers, one config.

The experiment service stack (daemon, job queue, TCP distributed backend,
sharded result store) runs long campaigns across processes and hosts that
*will* fail mid-flight.  This module centralises the policies those layers
use to survive failures — previously a scatter of hardcoded timeouts —
while keeping the repo's core contract intact: **retried or degraded runs
must stay bit-identical to the fault-free serial run**, which is why every
source of retry timing randomness here is explicitly seeded and why none
of these helpers ever touches experiment randomness.

* :class:`RetryPolicy` — bounded exponential backoff whose jitter comes
  from a seeded generator, so two replays of the same failing run sleep
  the same schedule (reproducible logs, reproducible tests).
* :class:`Deadline` — a monotonic time budget that can be shared across
  nested calls (``remaining()`` shrinks as work proceeds).
* :class:`CircuitBreaker` — a small closed/open/half-open breaker that
  stops hammering a peer which keeps failing.
* :class:`ResilienceConfig` — every knob of the distributed/service
  failure model in one JSON-round-trippable dataclass with ``REPRO_*``
  environment defaults.
"""

from __future__ import annotations

import dataclasses
import os
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple, Type


class DeadlineExceeded(TimeoutError):
    """Raised by :meth:`Deadline.check` when the time budget is spent."""


class CircuitOpenError(ConnectionError):
    """Raised by :meth:`CircuitBreaker.check` while the circuit is open."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with *seeded* jitter.

    ``delay(attempt)`` for attempt ``k`` (0-based) is
    ``min(base_delay * multiplier**k, max_delay)`` scaled by a jitter
    factor drawn uniformly from ``[1 - jitter, 1 + jitter]``.  The jitter
    stream is derived from ``seed`` alone, so the full sleep schedule of a
    retried run is a pure function of the policy — retried runs stay
    reproducible, which is part of the repo's golden contract.
    """

    max_attempts: int = 5
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def delays(self) -> Iterator[float]:
        """Yield the sleep before each retry (``max_attempts - 1`` values)."""
        rng = random.Random(self.seed)
        for attempt in range(self.max_attempts - 1):
            delay = min(self.base_delay * self.multiplier**attempt, self.max_delay)
            scale = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield delay * scale

    def call(
        self,
        fn: Callable[[], Any],
        retry_on: Tuple[Type[BaseException], ...] = (OSError,),
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        deadline: Optional["Deadline"] = None,
    ) -> Any:
        """Run ``fn`` up to ``max_attempts`` times, backing off between tries.

        Only exceptions matching ``retry_on`` are retried; the final
        failure (or a spent ``deadline``) re-raises the last exception.
        ``on_retry(attempt, error)`` is called before each backoff sleep —
        use it for logging or counters.
        """
        last: Optional[BaseException] = None
        for attempt, delay in enumerate(list(self.delays()) + [None]):
            try:
                return fn()
            except retry_on as error:  # noqa: PERF203 - retry loop by design
                last = error
                if delay is None or (deadline is not None and deadline.expired()):
                    raise
                if on_retry is not None:
                    on_retry(attempt, error)
                if deadline is not None:
                    delay = min(delay, max(deadline.remaining(), 0.0))
                sleep(delay)
        raise last  # pragma: no cover - loop always returns or raises


class Deadline:
    """A monotonic time budget shared across nested operations.

    ``Deadline(5.0)`` expires five seconds after construction;
    ``Deadline(None)`` never expires (an unlimited budget callers can
    thread through uniformly).  The clock is injectable for deterministic
    tests.
    """

    def __init__(
        self,
        seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ):
        self._clock = clock
        self.seconds = seconds
        self._expires = None if seconds is None else clock() + seconds

    @classmethod
    def unlimited(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(None)

    def remaining(self) -> float:
        """Seconds left (clamped to 0); ``inf`` for an unlimited deadline."""
        if self._expires is None:
            return float("inf")
        return max(0.0, self._expires - self._clock())

    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self._expires is not None and self._clock() >= self._expires

    def check(self, label: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(f"{label} exceeded its {self.seconds:.1f}s deadline")

    def extend(self, seconds: float) -> None:
        """Push the expiry ``seconds`` further out (no-op when unlimited)."""
        if self._expires is not None:
            self._expires += seconds


class CircuitBreaker:
    """Closed / open / half-open breaker for a repeatedly failing peer.

    ``failure_threshold`` consecutive failures open the circuit: further
    :meth:`allow` calls return ``False`` (callers skip the peer) until
    ``reset_timeout`` seconds pass, after which one probe is allowed
    (half-open).  A success closes the circuit again; a failure re-opens
    it.  The clock is injectable so tests drive transitions without
    sleeping.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        """The current breaker state (``closed``/``open``/``half-open``)."""
        if self._opened_at is None:
            return self.CLOSED
        if self._clock() - self._opened_at >= self.reset_timeout:
            return self.HALF_OPEN
        return self.OPEN

    def allow(self) -> bool:
        """Whether the caller may attempt the operation right now.

        Closed always allows; open always refuses; half-open allows one
        probe at a time (further calls refuse until the probe reports).
        """
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and not self._probing:
            self._probing = True
            return True
        return False

    def check(self, label: str = "peer") -> None:
        """Raise :class:`CircuitOpenError` instead of returning ``False``."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit for {label} is {self.state} after {self._failures} failures"
            )

    def record_success(self) -> None:
        """Report a successful operation: close the circuit."""
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        """Report a failure; opens the circuit at the threshold."""
        self._failures += 1
        self._probing = False
        if self._failures >= self.failure_threshold:
            self._opened_at = self._clock()


def _env_float(env: Mapping[str, str], key: str, default: float) -> float:
    raw = env.get(key)
    if raw is None or raw == "":
        return default
    return float(raw)


def _env_int(env: Mapping[str, str], key: str, default: int) -> int:
    raw = env.get(key)
    if raw is None or raw == "":
        return default
    return int(raw)


def _env_str(env: Mapping[str, str], key: str, default: Optional[str]) -> Optional[str]:
    raw = env.get(key)
    if raw is None:
        return default
    return raw or None  # empty string disables the knob


@dataclass(frozen=True)
class ResilienceConfig:
    """Every failure-model knob of the experiment stack, in one place.

    Replaces the hardcoded timeouts that used to live inline in
    :mod:`repro.experiments.distributed` (a 30 s worker dial, magic
    ``0.1``/``10`` sleeps and joins).  Each field has a ``REPRO_*``
    environment default (see :meth:`from_env`), the whole config JSON
    round-trips via :meth:`to_dict`/:meth:`from_dict`, and instances are
    immutable — derive variants with :meth:`replace`.

    Fields
    ------
    ``connect_timeout``
        How long the distributed backend waits for any worker to connect
        (or reconnect) before declaring the run stalled.
    ``dial_timeout`` / ``dial_retries`` / ``dial_backoff``
        The worker side of the same handshake: per-attempt socket timeout,
        number of dial attempts, base backoff between them.
    ``accept_poll``
        The backend's server-socket accept poll interval.
    ``chunk_timeout``
        Absolute wall-clock budget for one chunk on one worker; ``None``
        disables the bound.  Heartbeats do **not** extend it.
    ``heartbeat_interval`` / ``heartbeat_timeout``
        Workers send a heartbeat frame every ``heartbeat_interval`` seconds
        while connected; a backend that hears nothing for
        ``heartbeat_timeout`` seconds declares the worker dead and requeues
        its chunk.  ``heartbeat_interval=0`` disables worker heartbeats.
    ``max_chunk_retries``
        How many times one chunk may be requeued after worker losses
        before it is quarantined and the run fails with per-chunk
        diagnostics.
    ``fallback_backend``
        First rung of the graceful-degradation ladder taken when no worker
        connects within ``connect_timeout`` (``process`` → ``thread`` →
        ``serial``); ``None`` disables degradation and stalls raise.
    ``worker_respawns``
        How many replacement local workers the backend may spawn when the
        fleet dies with work outstanding.
    ``breaker_threshold`` / ``breaker_reset``
        The :class:`CircuitBreaker` used for repeatedly failing peers.
    ``shutdown_grace``
        Seconds granted to worker processes and handler threads to wind
        down before they are killed.
    ``retry_seed``
        Seed of every backoff jitter stream, keeping retried runs
        reproducible.
    """

    connect_timeout: float = 60.0
    dial_timeout: float = 30.0
    dial_retries: int = 50
    dial_backoff: float = 0.1
    accept_poll: float = 0.1
    chunk_timeout: Optional[float] = 600.0
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 30.0
    max_chunk_retries: int = 3
    fallback_backend: Optional[str] = None
    worker_respawns: int = 3
    breaker_threshold: int = 5
    breaker_reset: float = 30.0
    shutdown_grace: float = 10.0
    retry_seed: int = 0

    #: (field, environment variable, parser) — the env surface of the config.
    _ENV_FIELDS = (
        ("connect_timeout", "REPRO_CONNECT_TIMEOUT", _env_float),
        ("dial_timeout", "REPRO_DIAL_TIMEOUT", _env_float),
        ("dial_retries", "REPRO_DIAL_RETRIES", _env_int),
        ("dial_backoff", "REPRO_DIAL_BACKOFF", _env_float),
        ("accept_poll", "REPRO_ACCEPT_POLL", _env_float),
        ("chunk_timeout", "REPRO_CHUNK_TIMEOUT", _env_float),
        ("heartbeat_interval", "REPRO_HEARTBEAT_INTERVAL", _env_float),
        ("heartbeat_timeout", "REPRO_HEARTBEAT_TIMEOUT", _env_float),
        ("max_chunk_retries", "REPRO_MAX_CHUNK_RETRIES", _env_int),
        ("fallback_backend", "REPRO_FALLBACK_BACKEND", _env_str),
        ("worker_respawns", "REPRO_WORKER_RESPAWNS", _env_int),
        ("breaker_threshold", "REPRO_BREAKER_THRESHOLD", _env_int),
        ("breaker_reset", "REPRO_BREAKER_RESET", _env_float),
        ("shutdown_grace", "REPRO_SHUTDOWN_GRACE", _env_float),
        ("retry_seed", "REPRO_RETRY_SEED", _env_int),
    )

    def __post_init__(self):
        if self.max_chunk_retries < 0:
            raise ValueError(
                f"max_chunk_retries must be >= 0, got {self.max_chunk_retries}"
            )
        if self.fallback_backend not in (None, "serial", "thread", "process"):
            raise ValueError(
                f"fallback_backend must be serial/thread/process or None, "
                f"got {self.fallback_backend!r}"
            )

    @classmethod
    def from_env(
        cls, env: Optional[Mapping[str, str]] = None, **overrides: Any
    ) -> "ResilienceConfig":
        """Build a config from ``REPRO_*`` variables plus explicit overrides.

        Resolution order per field: explicit keyword override, then the
        environment variable, then the dataclass default.  Pass
        ``fallback_backend=""`` (or set ``REPRO_FALLBACK_BACKEND=``) to
        explicitly disable degradation.
        """
        env = os.environ if env is None else env
        values: Dict[str, Any] = {}
        for name, variable, parse in cls._ENV_FIELDS:
            default = getattr(cls, name)
            values[name] = parse(env, variable, default)
        if values["chunk_timeout"] == 0:
            values["chunk_timeout"] = None  # 0 disables the per-chunk bound
        for key, value in overrides.items():
            if value is None:
                continue
            if key == "fallback_backend" and value == "":
                value = None
            if key == "chunk_timeout" and value == 0:
                value = None
            values[key] = value
        return cls(**values)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable description; inverse of :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ResilienceConfig":
        """Rebuild a config from :meth:`to_dict` output (extras rejected)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown ResilienceConfig fields: {sorted(unknown)}")
        return cls(**dict(payload))

    def replace(self, **changes: Any) -> "ResilienceConfig":
        """A copy with ``changes`` applied (config objects are immutable)."""
        return dataclasses.replace(self, **changes)

    def retry_policy(self, **overrides: Any) -> RetryPolicy:
        """A :class:`RetryPolicy` seeded from this config's ``retry_seed``."""
        defaults = dict(
            max_attempts=max(1, self.dial_retries),
            base_delay=self.dial_backoff,
            seed=self.retry_seed,
        )
        defaults.update(overrides)
        return RetryPolicy(**defaults)

    def breaker(self, clock: Callable[[], float] = time.monotonic) -> CircuitBreaker:
        """A :class:`CircuitBreaker` parameterised from this config."""
        return CircuitBreaker(
            failure_threshold=self.breaker_threshold,
            reset_timeout=self.breaker_reset,
            clock=clock,
        )
