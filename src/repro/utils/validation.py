"""Small argument-validation helpers used across the library.

Keeping validation in one place makes error messages uniform and keeps the
substantive modules focused on behaviour rather than defensive boilerplate.
"""

from __future__ import annotations

import os
from typing import Union

Number = Union[int, float]


def check_positive(name: str, value: Number) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: Number) -> None:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value: Number) -> None:
    """Raise ``ValueError`` unless ``value`` is in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")


def check_in_range(name: str, value: Number, low: Number, high: Number) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be within [{low}, {high}], got {value!r}")


def check_index(name: str, value: int, size: int) -> None:
    """Raise ``IndexError`` unless ``0 <= value < size``."""
    if not 0 <= value < size:
        raise IndexError(f"{name} must be within [0, {size}), got {value!r}")


#: Engine tiers accepted everywhere an ``engine=`` selector appears.
ENGINES = ("vectorized", "reference", "compiled")


def check_engine(engine: str) -> None:
    """Raise ``ValueError`` unless ``engine`` names a known flip-engine.

    The vectorized hot engines, their retained loop references and the
    optional compiled kernel tier share this selector across the attack,
    bank, profiler and sweep layers.  ``compiled`` runs the vectorized
    algorithms with registry kernels swapped in (bit-identical, faster)
    and degrades to plain vectorized when no backend is available.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"engine must be one of {', '.join(repr(e) for e in ENGINES)}, got {engine!r}"
        )


def default_engine() -> str:
    """The process-wide default engine tier.

    ``REPRO_DEFAULT_ENGINE`` overrides the built-in ``"vectorized"``
    default — the CI compiled leg runs the entire suite under
    ``REPRO_DEFAULT_ENGINE=compiled`` this way.  Invalid values raise
    rather than silently running a different tier than requested.
    """
    engine = os.environ.get("REPRO_DEFAULT_ENGINE", "").strip().lower()
    if not engine:
        return "vectorized"
    check_engine(engine)
    return engine
