"""Shared utilities: seeded RNG management, unit conversions and validation.

These helpers are deliberately small and dependency-free so that every other
subpackage (:mod:`repro.dram`, :mod:`repro.faults`, :mod:`repro.nn`,
:mod:`repro.core`) can rely on them without creating import cycles.
"""

from repro.utils.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    ResilienceConfig,
    RetryPolicy,
)
from repro.utils.rng import RngMixin, derive_rng, spawn_seeds
from repro.utils.units import (
    CYCLES_PER_MS_DDR4_2400,
    cycles_to_ms,
    cycles_to_seconds,
    hammer_counts_to_time_ms,
    ms_to_cycles,
    rowpress_cycles_to_equivalent_hammer_counts,
    time_ms_to_hammer_counts,
)
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "ResilienceConfig",
    "RetryPolicy",
    "RngMixin",
    "derive_rng",
    "spawn_seeds",
    "CYCLES_PER_MS_DDR4_2400",
    "cycles_to_ms",
    "cycles_to_seconds",
    "ms_to_cycles",
    "hammer_counts_to_time_ms",
    "time_ms_to_hammer_counts",
    "rowpress_cycles_to_equivalent_hammer_counts",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
]
