"""Deterministic random-number-generator helpers.

Every stochastic component of the reproduction (DRAM cell vulnerability
sampling, synthetic dataset generation, weight initialisation, attack batch
selection) receives an explicit seed or :class:`numpy.random.Generator` so
that experiments are repeatable.  The helpers below centralise the common
patterns:

* :func:`derive_rng` turns ``None`` / ``int`` / ``Generator`` into a
  :class:`numpy.random.Generator`.
* :func:`spawn_seeds` deterministically derives child seeds from a parent
  seed, used when one experiment needs several independent RNG streams
  (for example, the paper averages each attack over three repetitions).
* :class:`RngMixin` gives classes a lazily constructed ``self.rng``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def derive_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a flexible seed spec.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a deterministic stream, or an
        existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(seed: int, count: int) -> List[int]:
    """Derive ``count`` independent child seeds from ``seed``.

    The derivation uses :class:`numpy.random.SeedSequence` spawning, which
    guarantees that the child streams are statistically independent and that
    the mapping ``(seed, count) -> children`` is stable across runs.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(1)[0]) for child in children]


def mix_seed(seed: int, *components: Union[int, str]) -> int:
    """Deterministically mix extra components into ``seed``.

    This is used to derive per-model or per-bank seeds from a global
    experiment seed, e.g. ``mix_seed(1234, "resnet20", 0)``.
    """
    entropy: List[int] = [seed & 0xFFFFFFFF]
    for component in components:
        if isinstance(component, str):
            entropy.append(abs(hash_string(component)) & 0xFFFFFFFF)
        else:
            entropy.append(int(component) & 0xFFFFFFFF)
    sequence = np.random.SeedSequence(entropy)
    return int(sequence.generate_state(1)[0])


def hash_string(text: str) -> int:
    """Stable (process-independent) 32-bit FNV-1a hash of ``text``."""
    value = 0x811C9DC5
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x01000193) & 0xFFFFFFFF
    return value


class RngMixin:
    """Mixin providing a lazily constructed, seedable ``self.rng``.

    Classes using the mixin should set ``self._seed`` (or pass ``seed`` to
    :meth:`_init_rng`) during construction.
    """

    _seed: SeedLike = None
    _rng: Optional[np.random.Generator] = None

    def _init_rng(self, seed: SeedLike = None) -> None:
        self._seed = seed
        self._rng = None

    @property
    def rng(self) -> np.random.Generator:
        """The lazily constructed random generator for this object."""
        if self._rng is None:
            self._rng = derive_rng(self._seed)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Replace the RNG stream with a fresh one derived from ``seed``."""
        self._seed = seed
        self._rng = derive_rng(seed)


def choice_without_replacement(
    rng: np.random.Generator, population: Iterable[int], size: int
) -> np.ndarray:
    """Sample ``size`` distinct items from ``population``.

    Raises ``ValueError`` when the population is smaller than ``size`` so the
    caller can surface a meaningful error (e.g. "profile has fewer vulnerable
    cells than weight bits to map").
    """
    population = np.asarray(list(population))
    if size > population.size:
        raise ValueError(
            f"cannot sample {size} items from a population of {population.size}"
        )
    return rng.choice(population, size=size, replace=False)
