"""Unit conversions between DRAM cycles, wall-clock time and hammer counts.

Section VII-A of the paper defines the "fair evaluation setting" used to put
RowHammer and RowPress on a common axis:

* RowHammer effort is measured in *hammer counts* (HC, number of
  ACT/PRE pairs issued to the aggressor rows).
* RowPress effort is measured in *cycles* elapsed inside a single long
  activation window.
* Both are converted to time using the DDR4-2400 clock:
  ``T = cycles / 2400 MHz`` so 100 M cycles ~= 41.67 ms, and the equivalent
  hammer count within that time is ``HC = T / tREFW * HC_max`` with
  ``tREFW = 64 ms`` and ``HC_max ~= 1.36 M`` activations per refresh window
  (the maximum measured by prior work [52]).

These conversions are used by the Fig. 6 benchmark and the Takeaway-1
("20x more bit flips in equal time") analysis.
"""

from __future__ import annotations

from repro.utils.validation import check_non_negative, check_positive

#: DDR4-2400 delivers 2400 mega-transfers/s; the paper treats the clock as
#: 2400 MHz for cycle-to-time conversion (Section VII-A).
DDR4_2400_FREQUENCY_MHZ: float = 2400.0

#: Number of DRAM clock cycles per millisecond for a DDR4-2400 part.
CYCLES_PER_MS_DDR4_2400: float = DDR4_2400_FREQUENCY_MHZ * 1e3

#: JEDEC refresh window (all rows must be refreshed within this interval).
DEFAULT_TREFW_MS: float = 64.0

#: Maximum number of hammer counts achievable within one refresh window,
#: as characterised by Lang et al. (Blaster) and quoted in Section V-A.
DEFAULT_MAX_HC_PER_TREFW: float = 1.36e6


def cycles_to_ms(cycles: float, frequency_mhz: float = DDR4_2400_FREQUENCY_MHZ) -> float:
    """Convert DRAM clock cycles to milliseconds."""
    check_non_negative("cycles", cycles)
    check_positive("frequency_mhz", frequency_mhz)
    return cycles / (frequency_mhz * 1e3)


def cycles_to_seconds(cycles: float, frequency_mhz: float = DDR4_2400_FREQUENCY_MHZ) -> float:
    """Convert DRAM clock cycles to seconds."""
    return cycles_to_ms(cycles, frequency_mhz) / 1e3


def ms_to_cycles(milliseconds: float, frequency_mhz: float = DDR4_2400_FREQUENCY_MHZ) -> float:
    """Convert milliseconds to DRAM clock cycles."""
    check_non_negative("milliseconds", milliseconds)
    check_positive("frequency_mhz", frequency_mhz)
    return milliseconds * frequency_mhz * 1e3


def hammer_counts_to_time_ms(
    hammer_counts: float,
    trefw_ms: float = DEFAULT_TREFW_MS,
    max_hc_per_trefw: float = DEFAULT_MAX_HC_PER_TREFW,
) -> float:
    """Convert a hammer count into the wall-clock time required to issue it.

    The conversion follows the paper's fair-evaluation rule: ``HC_max``
    activations fit in one refresh window of ``trefw_ms`` milliseconds, so
    ``time = HC / HC_max * trefw_ms``.
    """
    check_non_negative("hammer_counts", hammer_counts)
    check_positive("trefw_ms", trefw_ms)
    check_positive("max_hc_per_trefw", max_hc_per_trefw)
    return hammer_counts / max_hc_per_trefw * trefw_ms


def time_ms_to_hammer_counts(
    time_ms: float,
    trefw_ms: float = DEFAULT_TREFW_MS,
    max_hc_per_trefw: float = DEFAULT_MAX_HC_PER_TREFW,
) -> float:
    """Inverse of :func:`hammer_counts_to_time_ms`."""
    check_non_negative("time_ms", time_ms)
    check_positive("trefw_ms", trefw_ms)
    check_positive("max_hc_per_trefw", max_hc_per_trefw)
    return time_ms / trefw_ms * max_hc_per_trefw


def rowpress_cycles_to_equivalent_hammer_counts(
    cycles: float,
    frequency_mhz: float = DDR4_2400_FREQUENCY_MHZ,
    trefw_ms: float = DEFAULT_TREFW_MS,
    max_hc_per_trefw: float = DEFAULT_MAX_HC_PER_TREFW,
) -> float:
    """Map a RowPress cycle budget onto the equivalent RowHammer HC budget.

    This reproduces the worked example in Section VII-A: 100 M cycles on a
    2400 MHz chip is ~41.67 ms, which corresponds to ~885.4 K hammer counts.
    """
    time_ms = cycles_to_ms(cycles, frequency_mhz)
    return time_ms_to_hammer_counts(time_ms, trefw_ms, max_hc_per_trefw)
