"""repro — reproduction of "Compromising the Intelligence of Modern DNNs:
On the Effectiveness of Targeted RowPress" (DATE 2025).

The package is organised as the paper's system stack:

* :mod:`repro.dram` — behavioural DDR4 chip model (geometry, timing,
  commands, controller, statistical per-cell vulnerability);
* :mod:`repro.faults` — RowHammer (Algorithm 1) and RowPress (Algorithm 2)
  fault injectors, budget sweeps (Fig. 6) and chip profiling (Fig. 4);
* :mod:`repro.defenses` — counter-based RowHammer mitigations (TRR,
  Graphene, CBT, PARA, Hydra) and their evaluation against both mechanisms;
* :mod:`repro.nn` — a from-scratch numpy DNN framework with reverse-mode
  autodiff, 8-bit post-training quantization and bit-level weight access;
* :mod:`repro.models` — the eleven-model surrogate roster of Table I;
* :mod:`repro.core` — the paper's contribution: the DRAM-profile-aware
  bit-flip attack (Algorithm 3), the pluggable attack objectives
  (untargeted / targeted / stealthy-targeted) and the
  RowHammer-vs-RowPress comparison harness (Table I, Fig. 7);
* :mod:`repro.experiments` — the unified experiment API: declarative
  JSON-serialisable specs, a runner with serial / process-pool backends,
  a shared victim cache, a persistent result store and the
  ``python -m repro`` CLI;
* :mod:`repro.analysis` — metrics, table builders and report rendering.

Quick start::

    from repro import ComparisonSpec, ExperimentRunner

    runner = ExperimentRunner()
    result = runner.run(ComparisonSpec(model_keys=("resnet20",), repetitions=1))
    for comparison in result.payload:
        print(comparison.as_row())

or, from the shell::

    python -m repro run comparison --models resnet20 --report
"""

from typing import TYPE_CHECKING

__version__ = "1.1.0"

#: Lazily resolved public names -> providing module.  Keeping the imports
#: lazy means ``import repro`` stays cheap and avoids importing numpy-heavy
#: subsystems until they are actually used.
_LAZY_EXPORTS = {
    # repro.core comparison harness
    "prepare_victim": "repro.core.comparison",
    "compare_mechanisms_for_model": "repro.core.comparison",
    "ComparisonConfig": "repro.core.comparison",
    "ModelComparisonResult": "repro.core.comparison",
    "build_deployment_profiles": "repro.core.comparison",
    # pluggable attack objectives
    "AttackObjective": "repro.core.objective",
    "ObjectiveConfig": "repro.core.objective",
    "ObjectiveMetrics": "repro.core.objective",
    "UntargetedDegradation": "repro.core.objective",
    "TargetedMisclassification": "repro.core.objective",
    "StealthyTargeted": "repro.core.objective",
    # model roster
    "get_spec": "repro.models.registry",
    "TABLE1_ROSTER": "repro.models.registry",
    # unified experiments API
    "ExperimentSpec": "repro.experiments",
    "ComparisonSpec": "repro.experiments",
    "DefenseMatrixSpec": "repro.experiments",
    "FlipSweepSpec": "repro.experiments",
    "ChipProfileSpec": "repro.experiments",
    "ProfileDensitySpec": "repro.experiments",
    "ExperimentRunner": "repro.experiments",
    "ExperimentResult": "repro.experiments",
    "SerialBackend": "repro.experiments",
    "ProcessPoolBackend": "repro.experiments",
    "ResultStore": "repro.experiments",
    "VictimCache": "repro.experiments",
    "spec_from_dict": "repro.experiments",
}

__all__ = ["__version__", *sorted(_LAZY_EXPORTS)]


def __getattr__(name: str):
    """PEP 562 lazy re-exports of the documented public API."""
    try:
        module_name = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))


if TYPE_CHECKING:  # pragma: no cover - static-analysis-only imports
    from repro.core.comparison import (  # noqa: F401
        ComparisonConfig,
        ModelComparisonResult,
        build_deployment_profiles,
        compare_mechanisms_for_model,
        prepare_victim,
    )
    from repro.core.objective import (  # noqa: F401
        AttackObjective,
        ObjectiveConfig,
        ObjectiveMetrics,
        StealthyTargeted,
        TargetedMisclassification,
        UntargetedDegradation,
    )
    from repro.experiments import (  # noqa: F401
        ChipProfileSpec,
        ComparisonSpec,
        DefenseMatrixSpec,
        ExperimentResult,
        ExperimentRunner,
        ExperimentSpec,
        FlipSweepSpec,
        ProcessPoolBackend,
        ProfileDensitySpec,
        ResultStore,
        SerialBackend,
        VictimCache,
        spec_from_dict,
    )
    from repro.models.registry import TABLE1_ROSTER, get_spec  # noqa: F401
