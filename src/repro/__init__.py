"""repro — reproduction of "Compromising the Intelligence of Modern DNNs:
On the Effectiveness of Targeted RowPress" (DATE 2025).

The package is organised as the paper's system stack:

* :mod:`repro.dram` — behavioural DDR4 chip model (geometry, timing,
  commands, controller, statistical per-cell vulnerability);
* :mod:`repro.faults` — RowHammer (Algorithm 1) and RowPress (Algorithm 2)
  fault injectors, budget sweeps (Fig. 6) and chip profiling (Fig. 4);
* :mod:`repro.defenses` — counter-based RowHammer mitigations (TRR,
  Graphene, CBT, PARA, Hydra) and their evaluation against both mechanisms;
* :mod:`repro.nn` — a from-scratch numpy DNN framework with reverse-mode
  autodiff, 8-bit post-training quantization and bit-level weight access;
* :mod:`repro.models` — the eleven-model surrogate roster of Table I;
* :mod:`repro.core` — the paper's contribution: the DRAM-profile-aware
  bit-flip attack (Algorithm 3) and the RowHammer-vs-RowPress comparison
  harness (Table I, Fig. 7);
* :mod:`repro.analysis` — metrics, table builders and report rendering.

Quick start::

    from repro.core import prepare_victim, compare_mechanisms_for_model
    from repro.core.comparison import build_deployment_profiles, ComparisonConfig
    from repro.models import get_spec

    profiles = build_deployment_profiles(seed=0)
    result = compare_mechanisms_for_model(
        get_spec("resnet20"), profiles, ComparisonConfig(repetitions=1)
    )
    print(result.as_row())
"""

__version__ = "1.0.0"

__all__ = [
    "__version__",
]
