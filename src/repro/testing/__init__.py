"""Deterministic testing infrastructure (fault injection, chaos plans).

:mod:`repro.testing.chaos` provides the named fault points the experiment
stack is instrumented with and the seed-keyed :class:`FaultPlan` that
activates them — entirely inert (one ``None`` check per point) unless a
plan is installed programmatically or via ``REPRO_FAULT_PLAN``.
"""

from repro.testing.chaos import (
    ChaosError,
    FaultPlan,
    FaultSpec,
    active_plan,
    fault_point,
    install_plan,
    uninstall_plan,
)

__all__ = [
    "ChaosError",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "fault_point",
    "install_plan",
    "uninstall_plan",
]
