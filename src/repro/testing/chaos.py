"""Deterministic fault injection: named fault points, seed-keyed plans.

The resilience machinery of the experiment stack (retries, heartbeats,
chunk requeues, checkpointed recovery, atomic writes) is only trustworthy
if its failure paths can be exercised *deterministically*.  This module
provides that: production code is instrumented with **named fault
points** —

    from repro.testing import chaos
    ...
    chaos.fault_point("distributed.send_chunk")

— which are inert no-ops (a single ``None`` check) until a
:class:`FaultPlan` is installed.  A plan is a list of :class:`FaultSpec`
entries, each naming a point (glob patterns allowed), a fault ``kind``,
and the traversal window it fires in (``after``/``count`` hit counters),
so the *n*-th send of a chunk, the *second* store write, or the first
chunk a worker executes can be failed precisely and repeatably.

Fault kinds
-----------
``error``
    Raise :class:`ChaosError` (an ``OSError`` subclass, so every
    production handler that tolerates I/O failure tolerates injection).
``disconnect``
    Raise :class:`ConnectionError` — a peer vanishing mid-protocol.
``delay``
    Sleep ``delay`` seconds, then continue — stalls that trip timeouts
    and heartbeat monitors.
``crash``
    ``os._exit(exit_code)`` — the process dies as if SIGKILLed, with no
    atexit/finally cleanup.  Never fired in a process whose
    ``REPRO_CHAOS_ALLOW_CRASH`` environment variable is unset, so an
    installed plan cannot take down a test runner by accident.
``enospc``
    Raise ``OSError(ENOSPC)`` — the disk-full write failure.
``drop`` / ``partial_write`` / ``corrupt``
    *Cooperative* kinds: :func:`fault_point` returns the kind string and
    the instrumented site implements the semantics (drop a frame on the
    floor, write a truncated file, flip a payload bit) because only the
    site knows how.  ``corrupt`` sites call :func:`corrupt_bytes` to
    obtain the deterministically bit-flipped payload — the flipped byte
    and bit are a pure function of the plan ``seed``, the point name and
    the traversal number, so a corruption scenario is exactly repeatable.

Activation
----------
Programmatic: :func:`install_plan` / :func:`uninstall_plan` or the
:func:`active_plan` context manager.  Cross-process: set
``REPRO_FAULT_PLAN`` to the plan's JSON (or ``@/path/to/plan.json``) —
spawned workers and daemons inherit the variable, which is how a chaos
test reaches into a ``python -m repro worker`` subprocess.  Every firing
is recorded; :func:`fired` returns the log for assertions.
"""

from __future__ import annotations

import errno
import fnmatch
import json
import os
import random
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Environment variable carrying a JSON plan (or ``@path`` indirection).
PLAN_ENV = "REPRO_FAULT_PLAN"

#: Environment variable gating the ``crash`` kind (see module docstring).
ALLOW_CRASH_ENV = "REPRO_CHAOS_ALLOW_CRASH"

#: The fault kinds a plan may request.
KINDS = (
    "error",
    "disconnect",
    "delay",
    "crash",
    "enospc",
    "drop",
    "partial_write",
    "corrupt",
)

#: Kinds :func:`fault_point` returns to the site instead of acting itself.
COOPERATIVE_KINDS = ("drop", "partial_write", "corrupt")


class ChaosError(OSError):
    """An injected generic failure.

    Subclasses ``OSError`` deliberately: every production handler written
    to tolerate real I/O failure (lost connections, torn segments, full
    disks) tolerates injected failure identically, so chaos tests exercise
    the exact recovery paths production takes.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One fault: where it fires, what it does, and in which hit window.

    ``point`` names a fault point and may be an :mod:`fnmatch` glob
    (``"distributed.*"``).  The fault fires on traversals ``after``
    through ``after + count - 1`` of any matching point (1-based,
    counted per point name), so "the third send" or "every store write
    from the second on" (``count`` large) are both expressible.
    """

    point: str
    kind: str
    after: int = 1
    count: int = 1
    delay: float = 0.0
    message: str = "injected fault"
    exit_code: int = 137

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {KINDS}")
        if self.after < 1:
            raise ValueError(f"after must be >= 1 (1-based hit index), got {self.after}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")

    def matches(self, point: str, hit: int) -> bool:
        """Whether this fault fires for traversal number ``hit`` of ``point``."""
        if not fnmatch.fnmatchcase(point, self.point):
            return False
        return self.after <= hit < self.after + self.count

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable description; inverse of :meth:`from_dict`."""
        return {
            "point": self.point,
            "kind": self.kind,
            "after": self.after,
            "count": self.count,
            "delay": self.delay,
            "message": self.message,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSpec":
        """Rebuild a fault from :meth:`to_dict` output."""
        return cls(
            point=payload["point"],
            kind=payload["kind"],
            after=int(payload.get("after", 1)),
            count=int(payload.get("count", 1)),
            delay=float(payload.get("delay", 0.0)),
            message=payload.get("message", "injected fault"),
            exit_code=int(payload.get("exit_code", 137)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seed-keyed, JSON-round-trippable set of faults.

    The ``seed`` names the plan (chaos matrices key their scenarios by it
    and derive deterministic variations from it); the faults are plain
    :class:`FaultSpec` data.  Plans are immutable — the mutable traversal
    counters live in the installed :class:`_ActivePlan`, so installing the
    same plan twice starts counting from zero both times.
    """

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable description; inverse of :meth:`from_dict`."""
        return {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        return cls(
            faults=tuple(FaultSpec.from_dict(f) for f in payload.get("faults", ())),
            seed=int(payload.get("seed", 0)),
        )

    def to_json(self) -> str:
        """The compact JSON form ``REPRO_FAULT_PLAN`` carries."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def single(cls, point: str, kind: str, **kwargs: Any) -> "FaultPlan":
        """Convenience: a one-fault plan (keyword args go to the spec)."""
        return cls(faults=(FaultSpec(point=point, kind=kind, **kwargs),))


class _ActivePlan:
    """An installed plan plus its per-point traversal counters and log."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.hits: Dict[str, int] = {}
        self.fired: List[Tuple[str, str]] = []
        self.lock = threading.Lock()

    def visit(self, point: str) -> Optional[FaultSpec]:
        """Count one traversal of ``point``; the fault to fire, if any."""
        with self.lock:
            hit = self.hits.get(point, 0) + 1
            self.hits[point] = hit
            for fault in self.plan.faults:
                if fault.matches(point, hit):
                    self.fired.append((point, fault.kind))
                    return fault
        return None


#: The installed plan.  ``_UNRESOLVED`` means "not yet checked the
#: environment": the first fault_point call resolves ``REPRO_FAULT_PLAN``,
#: so spawned subprocesses inheriting the variable self-activate.
_UNRESOLVED = object()
_active: Any = _UNRESOLVED
_state_lock = threading.Lock()


def plan_from_env(env: Optional[Mapping[str, str]] = None) -> Optional[FaultPlan]:
    """The plan ``REPRO_FAULT_PLAN`` describes, or ``None``.

    The value is either inline JSON or ``@/path/to/plan.json``.  A value
    that fails to parse raises immediately — a chaos run with a broken
    plan must never silently run fault-free.
    """
    env = os.environ if env is None else env
    raw = env.get(PLAN_ENV)
    if not raw:
        return None
    if raw.startswith("@"):
        raw = Path(raw[1:]).read_text()
    return FaultPlan.from_json(raw)


def install_plan(plan: FaultPlan) -> None:
    """Activate ``plan`` process-wide (traversal counters start at zero)."""
    global _active
    with _state_lock:
        _active = _ActivePlan(plan)


def uninstall_plan() -> None:
    """Deactivate fault injection (also stops env re-resolution)."""
    global _active
    with _state_lock:
        _active = None


def reset() -> None:
    """Forget any installed plan AND re-arm env resolution (test helper)."""
    global _active
    with _state_lock:
        _active = _UNRESOLVED


class active_plan:
    """Context manager: install a plan on entry, restore the prior on exit.

    ``with chaos.active_plan(plan): ...`` is the idiomatic way tests scope
    injection; nested use restores the outer plan correctly.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._installed = _ActivePlan(plan)
        self._previous: Any = None

    def __enter__(self) -> "active_plan":
        global _active
        with _state_lock:
            self._previous = _active
            _active = self._installed
        return self

    def __exit__(self, *exc_info) -> None:
        global _active
        with _state_lock:
            _active = self._previous

    @property
    def fired(self) -> List[Tuple[str, str]]:
        """The ``(point, kind)`` firings this plan recorded (usable after exit)."""
        with self._installed.lock:
            return list(self._installed.fired)


def fired() -> List[Tuple[str, str]]:
    """Every ``(point, kind)`` the installed plan has fired so far."""
    current = _resolve()
    if current is None:
        return []
    with current.lock:
        return list(current.fired)


def _resolve() -> Optional[_ActivePlan]:
    """The active plan, resolving ``REPRO_FAULT_PLAN`` on first use."""
    global _active
    current = _active
    if current is not _UNRESOLVED:
        return current
    with _state_lock:
        if _active is _UNRESOLVED:
            plan = plan_from_env()
            _active = None if plan is None else _ActivePlan(plan)
        return _active


def fault_point(name: str) -> Optional[str]:
    """Declare a named fault point; inert unless an installed fault matches.

    Returns ``None`` on the (overwhelmingly common) no-fault path.  For a
    matched fault the non-cooperative kinds act here — raise, sleep, or
    exit — and the cooperative kinds (``drop``, ``partial_write``) return
    the kind string for the calling site to implement.
    """
    current = _active
    if current is None:
        return None
    if current is _UNRESOLVED:
        current = _resolve()
        if current is None:
            return None
    fault = current.visit(name)
    if fault is None:
        return None
    if fault.kind == "error":
        raise ChaosError(f"chaos[{name}]: {fault.message}")
    if fault.kind == "disconnect":
        raise ConnectionError(f"chaos[{name}]: {fault.message}")
    if fault.kind == "enospc":
        raise OSError(errno.ENOSPC, f"chaos[{name}]: No space left on device")
    if fault.kind == "delay":
        time.sleep(fault.delay)
        return None
    if fault.kind == "crash":
        if os.environ.get(ALLOW_CRASH_ENV):
            os._exit(fault.exit_code)
        raise ChaosError(
            f"chaos[{name}]: crash requested but {ALLOW_CRASH_ENV} is unset"
        )
    return fault.kind  # cooperative: drop / partial_write / corrupt


def corrupt_bytes(data: bytes, point: str) -> bytes:
    """The deterministically bit-flipped form of ``data`` for ``point``.

    Called by a site after :func:`fault_point` returned ``"corrupt"``.
    The flipped position is derived from the installed plan's ``seed``,
    the point name and the point's current traversal number, so the same
    plan corrupts the same byte of the same write every run.  Empty
    payloads are returned unchanged (there is no bit to flip).
    """
    if not data:
        return data
    current = _resolve()
    seed, hit = 0, 0
    if current is not None:
        seed = current.plan.seed
        with current.lock:
            hit = current.hits.get(point, 0)
    rng = random.Random(f"{seed}:{point}:{hit}")
    index = rng.randrange(len(data))
    mutated = bytearray(data)
    mutated[index] ^= 1 << rng.randrange(8)
    return bytes(mutated)
