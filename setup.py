"""Setuptools shim.

The metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on environments whose setuptools/pip are too old
for PEP 660 editable installs (e.g. offline machines without ``wheel``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Compromising the Intelligence of Modern DNNs: "
        "On the Effectiveness of Targeted RowPress' (DATE 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
)
