"""Tests for the Fig.-6 budget sweeps."""

import numpy as np
import pytest

from repro.dram.chip import DramChip
from repro.dram.geometry import DramGeometry
from repro.dram.vulnerability import VulnerabilityParameters
from repro.faults.sweep import (
    FlipCurve,
    equal_time_comparison,
    rowhammer_flip_curve,
    rowpress_flip_curve,
)


@pytest.fixture
def chip():
    geometry = DramGeometry(num_banks=1, rows_per_bank=32, cols_per_row=512)
    params = VulnerabilityParameters(rh_density=0.02, rp_density=0.2)
    return DramChip(geometry, vulnerability_parameters=params, seed=13)


class TestFlipCurve:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            FlipCurve("rowhammer", np.array([1.0, 2.0]), np.array([1]))

    def test_time_axis_rowhammer(self):
        curve = FlipCurve("rowhammer", np.array([1.36e6]), np.array([10]))
        assert curve.time_axis_ms()[0] == pytest.approx(64.0)

    def test_time_axis_rowpress(self):
        curve = FlipCurve("rowpress", np.array([2.4e6]), np.array([10]))
        assert curve.time_axis_ms()[0] == pytest.approx(1.0)

    def test_flips_at_time(self):
        curve = FlipCurve("rowpress", np.array([2.4e6, 4.8e6]), np.array([5, 9]))
        assert curve.flips_at_time_ms(0.5) == 0
        assert curve.flips_at_time_ms(1.0) == 5
        assert curve.flips_at_time_ms(10.0) == 9

    def test_serialisation(self):
        curve = FlipCurve("rowpress", np.array([1.0]), np.array([2]), rows_tested=3)
        payload = curve.to_dict()
        assert payload["mechanism"] == "rowpress" and payload["rows_tested"] == 3


class TestSweeps:
    def test_rowhammer_curve_monotone(self, chip):
        curve = rowhammer_flip_curve(chip, [100_000, 400_000, 800_000], max_rows_per_bank=6)
        assert curve.mechanism == "rowhammer"
        assert curve.is_monotonic()
        assert curve.final_flips > 0

    def test_rowpress_curve_monotone(self, chip):
        curve = rowpress_flip_curve(chip, [10_000_000, 50_000_000, 100_000_000], max_rows_per_bank=6)
        assert curve.mechanism == "rowpress"
        assert curve.is_monotonic()
        assert curve.final_flips > 0

    def test_equal_time_comparison_shows_rowpress_advantage(self, chip):
        rh = rowhammer_flip_curve(chip, [300_000, 600_000, 885_000], max_rows_per_bank=6)
        chip.reset()
        rp = rowpress_flip_curve(chip, [30_000_000, 60_000_000, 100_000_000], max_rows_per_bank=6)
        comparison = equal_time_comparison(rh, rp)
        assert comparison["rowpress_flips"] > comparison["rowhammer_flips"]
        assert comparison["rowpress_to_rowhammer_ratio"] > 1.0
        # The fair-conversion rule of Section VII-A.
        assert comparison["rowpress_budget_equivalent_hammer_counts"] == pytest.approx(885_416.7, rel=1e-3)

    def test_empty_budget_rejected(self, chip):
        with pytest.raises(ValueError):
            rowhammer_flip_curve(chip, [])
        with pytest.raises(ValueError):
            rowpress_flip_curve(chip, [])
