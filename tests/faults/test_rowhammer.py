"""Tests for the RowHammer fault-injection model (Algorithm 1)."""

import numpy as np
import pytest

from repro.dram.controller import MemoryController
from repro.faults.patterns import DataPattern
from repro.faults.rowhammer import RowHammerAttack, RowHammerConfig


@pytest.fixture
def controller(dense_chip):
    return MemoryController(dense_chip)


class TestRowHammerConfig:
    def test_aggressor_rows_double_sided(self):
        config = RowHammerConfig(victim_row=8, aggressor_distance=1)
        assert config.aggressor_rows(rows_per_bank=32) == [7, 9]

    def test_aggressor_rows_at_edge(self):
        config = RowHammerConfig(victim_row=0)
        assert config.aggressor_rows(rows_per_bank=32) == [1]

    def test_escalated_distance(self):
        config = RowHammerConfig(victim_row=8, aggressor_distance=2)
        assert config.aggressor_rows(rows_per_bank=32) == [6, 10]


class TestRowHammerAttack:
    def test_prepare_rows_writes_patterns(self, controller):
        attack = RowHammerAttack(controller, RowHammerConfig(victim_row=8, hammer_count=100))
        expected = attack.prepare_rows()
        assert expected.sum() == 0
        assert controller.chip.read_row(0, 7).sum() == controller.chip.geometry.cols_per_row

    def test_flips_accumulate_with_hammer_count(self, controller):
        low = RowHammerAttack(controller, RowHammerConfig(victim_row=8, hammer_count=30_000)).run()
        controller.chip.reset()
        high = RowHammerAttack(controller, RowHammerConfig(victim_row=8, hammer_count=900_000)).run()
        assert high.num_flips >= low.num_flips
        assert high.num_flips > 0

    def test_result_metadata(self, controller):
        result = RowHammerAttack(controller, RowHammerConfig(victim_row=8, hammer_count=500_000)).run()
        assert result.hammer_count == 500_000
        assert result.elapsed_cycles > 0
        assert all(flip.mechanism == "rowhammer" for flip in result.flips)
        assert result.flipped_columns == sorted(result.flipped_columns)

    def test_inverted_pattern_exposes_other_direction(self, controller):
        zeros = RowHammerAttack(
            controller, RowHammerConfig(victim_row=8, hammer_count=900_000, pattern=DataPattern.VICTIM_ZEROS)
        ).run()
        controller.chip.reset()
        ones = RowHammerAttack(
            controller, RowHammerConfig(victim_row=8, hammer_count=900_000, pattern=DataPattern.VICTIM_ONES)
        ).run()
        zero_direction = {flip.direction for flip in zeros.flips}
        one_direction = {flip.direction for flip in ones.flips}
        assert zero_direction <= {"0->1"}
        assert one_direction <= {"1->0"}

    def test_no_flips_when_data_matches_aggressors(self, controller):
        config = RowHammerConfig(victim_row=8, hammer_count=900_000)
        attack = RowHammerAttack(controller, config)
        attack.prepare_rows()
        # Overwrite the victim with the aggressor pattern: no differing bits.
        cols = controller.chip.geometry.cols_per_row
        controller.chip.write_row(0, 8, np.ones(cols, dtype=np.uint8))
        controller.hammer_rows(0, [7, 9], 900_000)
        observed = controller.chip.read_row(0, 8)
        assert observed.sum() == cols  # nothing flipped

    def test_hammer_count_bounds(self, controller):
        attack = RowHammerAttack(controller, RowHammerConfig(victim_row=8))
        lower, upper = attack.hammer_count_bounds([10_000, 100_000, 400_000, 900_000, 1_200_000])
        assert lower is not None
        assert lower <= 900_000
