"""Tests for whole-chip profiling."""

import pytest

from repro.dram.chip import DramChip
from repro.dram.geometry import DramGeometry
from repro.dram.vulnerability import VulnerabilityParameters
from repro.faults.profiler import ChipProfiler, ProfilingConfig
from repro.faults.profiles import BitFlipProfile


@pytest.fixture
def chip():
    geometry = DramGeometry(num_banks=1, rows_per_bank=24, cols_per_row=256)
    params = VulnerabilityParameters(rh_density=0.05, rp_density=0.2)
    return DramChip(geometry, vulnerability_parameters=params, seed=5)


class TestProfilingConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ProfilingConfig(hammer_count=0)
        with pytest.raises(ValueError):
            ProfilingConfig(open_cycles=-1)
        with pytest.raises(ValueError):
            ProfilingConfig(row_stride=0)


class TestChipProfiler:
    def test_profile_pair_has_expected_shape(self, chip):
        config = ProfilingConfig(hammer_count=900_000, open_cycles=100_000_000)
        pair = ChipProfiler(chip, config).profile()
        stats = pair.statistics()
        assert stats["rh_cells"] > 0
        assert stats["rp_cells"] > stats["rh_cells"]

    def test_profiles_are_subsets_of_the_ideal_model(self, chip):
        config = ProfilingConfig(hammer_count=900_000, open_cycles=100_000_000)
        profiler = ChipProfiler(chip, config)
        measured = profiler.profile_rowpress()
        ideal = BitFlipProfile.from_vulnerability_model(
            chip.vulnerability_model, "rowpress", budget=100_000_000
        )
        measured_set = set(measured.flat_indices.tolist())
        ideal_set = set(ideal.flat_indices.tolist())
        assert measured_set <= ideal_set

    def test_row_stride_reduces_coverage(self, chip):
        dense_config = ProfilingConfig(hammer_count=600_000, open_cycles=60_000_000, row_stride=1)
        sparse_config = ProfilingConfig(hammer_count=600_000, open_cycles=60_000_000, row_stride=4)
        dense = ChipProfiler(chip, dense_config).profile_rowpress()
        sparse = ChipProfiler(chip, sparse_config).profile_rowpress()
        assert len(sparse) <= len(dense)

    def test_bank_restriction(self):
        geometry = DramGeometry(num_banks=2, rows_per_bank=16, cols_per_row=128)
        params = VulnerabilityParameters(rh_density=0.05, rp_density=0.2)
        chip = DramChip(geometry, vulnerability_parameters=params, seed=6)
        config = ProfilingConfig(hammer_count=600_000, open_cycles=60_000_000, banks=[1])
        profile = ChipProfiler(chip, config).profile_rowpress()
        mapper = chip.address_mapper
        banks_touched = {mapper.to_cell(int(i)).bank for i in profile.flat_indices}
        assert banks_touched <= {1}
