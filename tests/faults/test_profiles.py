"""Tests for BitFlipProfile / ProfilePair."""

import numpy as np
import pytest

from repro.dram.cells import CellFlip
from repro.dram.geometry import DramGeometry
from repro.dram.vulnerability import CellVulnerabilityModel, FlipDirection, VulnerabilityParameters
from repro.faults.profiles import BitFlipProfile, ProfilePair


def make_profile(indices, directions=None, capacity=1000, mechanism="rowpress"):
    indices = np.asarray(indices, dtype=np.int64)
    if directions is None:
        directions = np.zeros(indices.size, dtype=np.int8)
    return BitFlipProfile(mechanism, indices, np.asarray(directions, dtype=np.int8), capacity)


class TestConstruction:
    def test_sorted_and_deduplicated(self):
        profile = make_profile([5, 1, 5, 3], directions=[1, 0, 1, 0])
        assert profile.flat_indices.tolist() == [1, 3, 5]
        assert len(profile) == 3

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_profile([1001], capacity=1000)
        with pytest.raises(ValueError):
            make_profile([-1], capacity=1000)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BitFlipProfile("rowpress", np.array([1, 2]), np.array([0]), 100)


class TestQueries:
    def test_contains_and_direction(self):
        profile = make_profile([2, 7], directions=[1, 0])
        assert 2 in profile and 7 in profile and 5 not in profile
        assert profile.direction_of(2) is FlipDirection.ONE_TO_ZERO
        assert profile.direction_of(7) is FlipDirection.ZERO_TO_ONE
        with pytest.raises(KeyError):
            profile.direction_of(5)

    def test_density(self):
        profile = make_profile([0, 1, 2, 3], capacity=100)
        assert profile.density == pytest.approx(0.04)

    def test_direction_counts(self):
        profile = make_profile([1, 2, 3], directions=[1, 1, 0])
        assert profile.direction_counts() == {"1->0": 2, "0->1": 1}


class TestSetOperations:
    def test_overlap_and_fraction(self):
        a = make_profile([1, 2, 3, 4])
        b = make_profile([3, 4, 5, 6])
        assert a.overlap(b).tolist() == [3, 4]
        assert a.overlap_fraction(b) == pytest.approx(2 / 6)

    def test_restricted_to(self):
        profile = make_profile([1, 2, 3, 4, 5])
        restricted = profile.restricted_to([2, 4, 99])
        assert restricted.flat_indices.tolist() == [2, 4]

    def test_sample_subset(self):
        profile = make_profile(list(range(100)), capacity=1000)
        subset = profile.sample(10, seed=0)
        assert len(subset) == 10
        assert set(subset.flat_indices.tolist()) <= set(range(100))

    def test_sample_larger_than_profile_returns_self(self):
        profile = make_profile([1, 2, 3])
        assert profile.sample(100) is profile


class TestConstructionHelpers:
    def test_from_flips(self):
        geometry = DramGeometry(num_banks=1, rows_per_bank=4, cols_per_row=8)
        flips = [
            CellFlip(bank=0, row=1, col=2, before=1, after=0, mechanism="rowhammer"),
            CellFlip(bank=0, row=2, col=5, before=0, after=1, mechanism="rowhammer"),
        ]
        profile = BitFlipProfile.from_flips("rowhammer", flips, geometry)
        assert len(profile) == 2
        assert profile.direction_counts() == {"1->0": 1, "0->1": 1}

    def test_from_vulnerability_model_budget_monotone(self):
        geometry = DramGeometry(num_banks=2, rows_per_bank=32, cols_per_row=256)
        model = CellVulnerabilityModel(geometry, VulnerabilityParameters(rh_density=0.05), seed=0)
        small = BitFlipProfile.from_vulnerability_model(model, "rowhammer", budget=5e4)
        large = BitFlipProfile.from_vulnerability_model(model, "rowhammer", budget=5e6)
        assert len(large) >= len(small)
        assert set(small.flat_indices.tolist()) <= set(large.flat_indices.tolist())

    def test_from_vulnerability_model_unknown_mechanism(self):
        geometry = DramGeometry(num_banks=1, rows_per_bank=8, cols_per_row=8)
        model = CellVulnerabilityModel(geometry, seed=0)
        with pytest.raises(ValueError):
            BitFlipProfile.from_vulnerability_model(model, "rowsmash", budget=1e6)

    def test_synthetic_density(self):
        profile = BitFlipProfile.synthetic("rowpress", 10_000, density=0.1,
                                           one_to_zero_probability=0.3, seed=1)
        assert len(profile) == 1000
        assert 0.0 <= profile.direction_counts()["1->0"] / len(profile) <= 0.6

    def test_synthetic_invalid_density(self):
        with pytest.raises(ValueError):
            BitFlipProfile.synthetic("rowpress", 100, density=1.5, one_to_zero_probability=0.5)


class TestSerialization:
    def test_roundtrip_dict(self):
        profile = make_profile([3, 9, 27], directions=[1, 0, 1])
        clone = BitFlipProfile.from_dict(profile.to_dict())
        assert np.array_equal(clone.flat_indices, profile.flat_indices)
        assert np.array_equal(clone.directions, profile.directions)
        assert clone.mechanism == profile.mechanism

    def test_roundtrip_file(self, tmp_path):
        profile = make_profile([3, 9, 27])
        path = tmp_path / "profile.json"
        profile.save(path)
        clone = BitFlipProfile.load(path)
        assert np.array_equal(clone.flat_indices, profile.flat_indices)


class TestProfilePair:
    def test_statistics(self):
        pair = ProfilePair(
            rowhammer=make_profile([1, 2], mechanism="rowhammer"),
            rowpress=make_profile([2, 3, 4, 5], mechanism="rowpress"),
        )
        stats = pair.statistics()
        assert stats["rh_cells"] == 2 and stats["rp_cells"] == 4
        assert stats["rp_to_rh_ratio"] == pytest.approx(2.0)
        assert stats["overlap_cells"] == 1

    def test_profile_for(self):
        pair = ProfilePair(
            rowhammer=make_profile([1], mechanism="rowhammer"),
            rowpress=make_profile([2], mechanism="rowpress"),
        )
        assert pair.profile_for("rowhammer").mechanism == "rowhammer"
        with pytest.raises(ValueError):
            pair.profile_for("other")
