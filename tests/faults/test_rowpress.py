"""Tests for the RowPress fault-injection model (Algorithm 2)."""

import pytest

from repro.dram.controller import MemoryController
from repro.faults.rowpress import RowPressAttack, RowPressConfig


@pytest.fixture
def controller(dense_chip):
    return MemoryController(dense_chip)


class TestRowPressConfig:
    def test_pattern_rows(self):
        config = RowPressConfig(pressed_row=8)
        assert config.pattern_rows(rows_per_bank=32) == [7, 9]

    def test_pattern_rows_at_edge(self):
        config = RowPressConfig(pressed_row=0)
        assert config.pattern_rows(rows_per_bank=32) == [1]


class TestRowPressAttack:
    def test_flips_increase_with_open_window(self, controller):
        short = RowPressAttack(controller, RowPressConfig(pressed_row=8, open_cycles=1_000_000)).run()
        controller.chip.reset()
        long = RowPressAttack(controller, RowPressConfig(pressed_row=8, open_cycles=90_000_000)).run()
        assert long.num_flips >= short.num_flips
        assert long.num_flips > 0

    def test_single_activation_per_window(self, controller):
        result = RowPressAttack(controller, RowPressConfig(pressed_row=8, open_cycles=50_000_000)).run()
        assert result.total_activations == 1

    def test_window_larger_than_refresh_window_is_split(self, controller):
        max_window = controller.chip.timings.max_open_window_cycles()
        result = RowPressAttack(
            controller, RowPressConfig(pressed_row=8, open_cycles=max_window + 1000)
        ).run()
        assert result.total_activations == 2

    def test_repetitions_accumulate(self, controller):
        once = RowPressAttack(controller, RowPressConfig(pressed_row=8, open_cycles=20_000_000)).run()
        controller.chip.reset()
        controller2 = MemoryController(controller.chip)
        thrice = RowPressAttack(
            controller2, RowPressConfig(pressed_row=8, open_cycles=20_000_000, repetitions=3)
        ).run()
        assert thrice.num_flips >= once.num_flips
        assert thrice.total_activations == 3

    def test_flips_confined_to_pattern_rows(self, controller):
        result = RowPressAttack(controller, RowPressConfig(pressed_row=8, open_cycles=90_000_000)).run()
        assert set(flip.row for flip in result.flips) <= {7, 9}
        assert all(flip.mechanism == "rowpress" for flip in result.flips)

    def test_flips_per_row_accounting(self, controller):
        result = RowPressAttack(controller, RowPressConfig(pressed_row=8, open_cycles=90_000_000)).run()
        assert sum(result.flips_per_row.values()) == result.num_flips

    def test_invalid_repetitions(self, controller):
        attack = RowPressAttack(controller, RowPressConfig(pressed_row=8))
        with pytest.raises(ValueError):
            attack.run(repetitions=0)
