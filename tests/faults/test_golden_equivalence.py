"""Golden-equivalence tests: vectorized fault engine vs the loop reference.

The vectorized DRAM fault engine (whole-bank masked compares in
:class:`~repro.dram.bank.DramBank`, the bank-sweep profiler and the batched
budget sweeps) must reproduce the retained reference implementations
flip-for-flip.  These tests pin that contract across seeds, geometries,
strides and data patterns.
"""

import numpy as np
import pytest

from repro.dram.bank import DramBank
from repro.dram.chip import DramChip
from repro.dram.controller import MemoryController
from repro.dram.geometry import DramGeometry
from repro.dram.vulnerability import VulnerabilityParameters
from repro.faults.profiler import ChipProfiler, ProfilingConfig
from repro.faults.sweep import rowhammer_flip_curve, rowpress_flip_curve

DENSE = VulnerabilityParameters(rh_density=0.05, rp_density=0.2)
GEOMETRY = DramGeometry(num_banks=2, rows_per_bank=48, cols_per_row=256)


def flip_tuples(flips):
    return [(f.bank, f.row, f.col, f.before, f.after, f.mechanism) for f in flips]


def make_bank_pair(seed):
    """Two banks with identical vulnerability maps but different engines."""
    reference_chip = DramChip(GEOMETRY, vulnerability_parameters=DENSE, seed=seed,
                              engine="reference")
    vectorized_chip = DramChip(GEOMETRY, vulnerability_parameters=DENSE, seed=seed)
    return reference_chip.bank(0), vectorized_chip.bank(0)


class TestBankEngineEquivalence:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_hammer_sequences_identical(self, seed):
        reference, vectorized = make_bank_pair(seed)
        rng = np.random.default_rng(seed)
        for bank in (reference, vectorized):
            for row in range(GEOMETRY.rows_per_bank):
                bank.write_row(row, (np.arange(GEOMETRY.cols_per_row) + row) % 2)
        for _ in range(20):
            victim = int(rng.integers(1, GEOMETRY.rows_per_bank - 1))
            aggressors = [victim - 1, victim + 1]
            count = int(rng.integers(10_000, 400_000))
            ref_flips = reference.hammer(aggressors, count)
            vec_flips = vectorized.hammer(aggressors, count)
            assert flip_tuples(ref_flips) == flip_tuples(vec_flips)
        assert np.array_equal(reference.data, vectorized.data)
        assert np.array_equal(reference.hammer_accumulator, vectorized.hammer_accumulator)

    @pytest.mark.parametrize("seed", [1, 5])
    def test_press_sequences_identical(self, seed):
        reference, vectorized = make_bank_pair(seed)
        rng = np.random.default_rng(seed)
        for bank in (reference, vectorized):
            for row in range(GEOMETRY.rows_per_bank):
                bank.write_row(row, np.full(GEOMETRY.cols_per_row, row % 2, dtype=np.uint8))
        for _ in range(20):
            row = int(rng.integers(0, GEOMETRY.rows_per_bank))
            cycles = int(rng.integers(100_000, 80_000_000))
            assert flip_tuples(reference.press(row, cycles)) == flip_tuples(
                vectorized.press(row, cycles)
            )
        assert np.array_equal(reference.data, vectorized.data)
        assert np.array_equal(reference.press_accumulator, vectorized.press_accumulator)

    def test_press_many_matches_sequential_presses(self):
        reference, vectorized = make_bank_pair(9)
        for bank in (reference, vectorized):
            for row in range(GEOMETRY.rows_per_bank):
                bank.write_row(row, np.full(GEOMETRY.cols_per_row, 1, dtype=np.uint8))
        pressed = list(range(1, GEOMETRY.rows_per_bank - 1, 3))
        sequential = []
        for row in pressed:
            sequential.extend(reference.press(row, 50_000_000))
        batched = vectorized.press_many(pressed, 50_000_000)
        # Batching reorders the returned list (victim rows ascending); the
        # flip sets and the resulting bank state are identical.
        assert sorted(flip_tuples(sequential)) == sorted(flip_tuples(batched))
        assert np.array_equal(reference.data, vectorized.data)
        assert np.array_equal(reference.press_accumulator, vectorized.press_accumulator)

    def test_press_rows_with_defense_matches_sequential(self):
        """With a defense attached the batch falls back to exact sequencing.

        A precharge-triggered defense can NRR-heal a victim row between two
        presses; the batched evaluation cannot interleave that healing, so
        the controller must press sequentially whenever defenses observe it.
        """
        from repro.defenses.press_aware import OpenWindowMonitorDefense

        def run(batched):
            chip = DramChip(GEOMETRY, vulnerability_parameters=DENSE, seed=3)
            controller = MemoryController(
                chip,
                defenses=[OpenWindowMonitorDefense(
                    open_cycles_threshold=4_500_000, blast_radius=2
                )],
            )
            pressed = list(range(1, GEOMETRY.rows_per_bank - 1, 3))
            for row in range(GEOMETRY.rows_per_bank):
                chip.write_row(0, row, np.full(GEOMETRY.cols_per_row, row % 2, dtype=np.uint8))
            flips = []
            for _ in range(2):
                if batched:
                    flips.extend(controller.press_rows(0, pressed, 3_000_000))
                else:
                    for row in pressed:
                        flips.extend(controller.press_row(0, row, 3_000_000))
            return flips

        assert sorted(flip_tuples(run(batched=True))) == sorted(flip_tuples(run(batched=False)))

    def test_press_many_rejects_interacting_rows(self):
        _, vectorized = make_bank_pair(9)
        # Rows closer than 3 apart share victims (or press each other), where
        # batched evaluation would diverge from sequential physics.
        for rows in ([4, 5], [4, 6]):
            with pytest.raises(ValueError):
                vectorized.press_many(rows, 1_000_000)

    def test_hammer_edge_rows(self):
        reference, vectorized = make_bank_pair(13)
        for bank in (reference, vectorized):
            bank.write_row(0, np.zeros(GEOMETRY.cols_per_row, dtype=np.uint8))
            bank.write_row(1, np.ones(GEOMETRY.cols_per_row, dtype=np.uint8))
        # Aggressor at the bank edge: the victim set has a single row.
        assert flip_tuples(reference.hammer([1], 900_000)) == flip_tuples(
            vectorized.hammer([1], 900_000)
        )


class TestProfilerEquivalence:
    @pytest.mark.parametrize("seed", [0, 7])
    @pytest.mark.parametrize("stride", [1, 2])
    def test_profiles_flip_identical(self, seed, stride):
        config = ProfilingConfig(hammer_count=400_000, open_cycles=40_000_000,
                                 row_stride=stride)
        reference = ChipProfiler(
            DramChip(GEOMETRY, seed=seed, engine="reference"), config, engine="reference"
        )
        vectorized = ChipProfiler(DramChip(GEOMETRY, seed=seed), config)
        for mechanism in ("rowhammer", "rowpress"):
            assert flip_tuples(reference._run_mechanism(mechanism)) == flip_tuples(
                vectorized._run_mechanism(mechanism)
            )

    def test_profile_pairs_identical(self):
        config = ProfilingConfig(hammer_count=600_000, open_cycles=60_000_000)
        reference = ChipProfiler(
            DramChip(GEOMETRY, seed=2, engine="reference"), config, engine="reference"
        ).profile()
        vectorized = ChipProfiler(DramChip(GEOMETRY, seed=2), config).profile()
        for mechanism in ("rowhammer", "rowpress"):
            ref_profile = reference.profile_for(mechanism)
            vec_profile = vectorized.profile_for(mechanism)
            assert np.array_equal(ref_profile.flat_indices, vec_profile.flat_indices)
            assert np.array_equal(ref_profile.directions, vec_profile.directions)

    def test_bank_restriction_respected(self):
        config = ProfilingConfig(hammer_count=600_000, open_cycles=60_000_000, banks=[1])
        reference = ChipProfiler(
            DramChip(GEOMETRY, seed=4, engine="reference"), config, engine="reference"
        )
        vectorized = ChipProfiler(DramChip(GEOMETRY, seed=4), config)
        for mechanism in ("rowhammer", "rowpress"):
            ref_flips = reference._run_mechanism(mechanism)
            vec_flips = vectorized._run_mechanism(mechanism)
            assert flip_tuples(ref_flips) == flip_tuples(vec_flips)
            assert all(f.bank == 1 for f in vec_flips)


class TestSweepEquivalence:
    BUDGETS_RH = [100_000, 400_000, 800_000]
    BUDGETS_RP = [10_000_000, 40_000_000, 90_000_000]

    @pytest.mark.parametrize("seed", [0, 6])
    @pytest.mark.parametrize("max_rows", [6, None])
    def test_rowhammer_curves_identical(self, seed, max_rows):
        reference = rowhammer_flip_curve(
            DramChip(GEOMETRY, vulnerability_parameters=DENSE, seed=seed, engine="reference"),
            self.BUDGETS_RH, max_rows_per_bank=max_rows, engine="reference",
        )
        vectorized = rowhammer_flip_curve(
            DramChip(GEOMETRY, vulnerability_parameters=DENSE, seed=seed),
            self.BUDGETS_RH, max_rows_per_bank=max_rows,
        )
        assert np.array_equal(reference.flips, vectorized.flips)
        assert np.array_equal(reference.budgets, vectorized.budgets)

    @pytest.mark.parametrize("seed", [0, 6])
    @pytest.mark.parametrize("max_rows", [6, None])
    def test_rowpress_curves_identical(self, seed, max_rows):
        reference = rowpress_flip_curve(
            DramChip(GEOMETRY, vulnerability_parameters=DENSE, seed=seed, engine="reference"),
            self.BUDGETS_RP, max_rows_per_bank=max_rows, engine="reference",
        )
        vectorized = rowpress_flip_curve(
            DramChip(GEOMETRY, vulnerability_parameters=DENSE, seed=seed),
            self.BUDGETS_RP, max_rows_per_bank=max_rows,
        )
        assert np.array_equal(reference.flips, vectorized.flips)
