"""Tests for data patterns."""

import numpy as np
import pytest

from repro.faults.patterns import (
    DataPattern,
    make_pattern,
    profiling_patterns,
    victim_differs_everywhere,
)


class TestMakePattern:
    def test_victim_zeros(self):
        victim, aggressor = make_pattern(DataPattern.VICTIM_ZEROS, 16)
        assert victim.sum() == 0 and aggressor.sum() == 16

    def test_victim_ones(self):
        victim, aggressor = make_pattern(DataPattern.VICTIM_ONES, 16)
        assert victim.sum() == 16 and aggressor.sum() == 0

    def test_checkerboard_differs_everywhere(self):
        victim, aggressor = make_pattern(DataPattern.CHECKERBOARD, 16)
        assert victim_differs_everywhere(victim, aggressor)

    @pytest.mark.parametrize("pattern", list(DataPattern))
    def test_all_patterns_fully_differ(self, pattern):
        victim, aggressor = make_pattern(pattern, 32)
        assert victim_differs_everywhere(victim, aggressor)
        assert victim.dtype == np.uint8 and aggressor.dtype == np.uint8

    def test_profiling_patterns_cover_both_polarities(self):
        patterns = profiling_patterns()
        assert DataPattern.VICTIM_ZEROS in patterns
        assert DataPattern.VICTIM_ONES in patterns
