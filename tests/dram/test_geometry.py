"""Tests for DRAM geometry."""

import pytest

from repro.dram.geometry import DEFAULT_GEOMETRY, TINY_GEOMETRY, DramGeometry


class TestDramGeometry:
    def test_cell_counts(self):
        geometry = DramGeometry(num_banks=2, rows_per_bank=4, cols_per_row=8)
        assert geometry.cells_per_bank == 32
        assert geometry.total_cells == 64
        assert geometry.total_bytes == 8

    def test_default_geometry_is_nontrivial(self):
        assert DEFAULT_GEOMETRY.total_cells > 100_000

    def test_tiny_geometry_smaller_than_default(self):
        assert TINY_GEOMETRY.total_cells < DEFAULT_GEOMETRY.total_cells

    def test_validation(self):
        geometry = TINY_GEOMETRY
        geometry.validate_bank(0)
        geometry.validate_row(geometry.rows_per_bank - 1)
        geometry.validate_col(geometry.cols_per_row - 1)
        with pytest.raises(IndexError):
            geometry.validate_bank(geometry.num_banks)
        with pytest.raises(IndexError):
            geometry.validate_row(-1)
        with pytest.raises(IndexError):
            geometry.validate_col(geometry.cols_per_row)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            DramGeometry(num_banks=0)
        with pytest.raises(ValueError):
            DramGeometry(rows_per_bank=0)
        with pytest.raises(ValueError):
            DramGeometry(cols_per_row=-1)


class TestNeighbours:
    def test_interior_row_has_two_neighbours(self):
        geometry = DramGeometry(num_banks=1, rows_per_bank=10, cols_per_row=4)
        assert geometry.neighbours(5) == (4, 6)

    def test_edge_rows_have_single_neighbour(self):
        geometry = DramGeometry(num_banks=1, rows_per_bank=10, cols_per_row=4)
        assert geometry.neighbours(0) == (1,)
        assert geometry.neighbours(9) == (8,)

    def test_distance_two(self):
        geometry = DramGeometry(num_banks=1, rows_per_bank=10, cols_per_row=4)
        assert geometry.neighbours(5, distance=2) == (3, 7)

    def test_invalid_distance(self):
        geometry = DramGeometry(num_banks=1, rows_per_bank=10, cols_per_row=4)
        with pytest.raises(ValueError):
            geometry.neighbours(5, distance=0)
