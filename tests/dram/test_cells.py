"""Tests for row-data helpers and flip detection."""

import numpy as np
import pytest

from repro.dram.cells import (
    CellFlip,
    all_ones,
    all_zeros,
    bits_from_bytes,
    checkerboard,
    detect_flips,
    diff_columns,
    random_row,
)


class TestPatterns:
    def test_all_ones_zeros(self):
        assert all_ones(8).sum() == 8
        assert all_zeros(8).sum() == 0

    def test_checkerboard_alternates(self):
        row = checkerboard(6)
        assert row.tolist() == [0, 1, 0, 1, 0, 1]
        assert checkerboard(6, phase=1).tolist() == [1, 0, 1, 0, 1, 0]

    def test_random_row_is_binary(self):
        row = random_row(100, np.random.default_rng(0))
        assert set(np.unique(row)) <= {0, 1}

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            all_ones(0)

    def test_bits_from_bytes(self):
        bits = bits_from_bytes(b"\xff\x00", 16)
        assert bits[:8].sum() == 8 and bits[8:].sum() == 0
        padded = bits_from_bytes(b"\xff", 12)
        assert padded.size == 12 and padded[8:].sum() == 0


class TestFlipDetection:
    def test_diff_columns(self):
        a = np.array([0, 1, 0, 1], dtype=np.uint8)
        b = np.array([0, 0, 0, 0], dtype=np.uint8)
        assert diff_columns(a, b).tolist() == [1, 3]

    def test_diff_columns_shape_mismatch(self):
        with pytest.raises(ValueError):
            diff_columns(np.zeros(3, dtype=np.uint8), np.zeros(4, dtype=np.uint8))

    def test_detect_flips_records_direction(self):
        expected = np.array([1, 1, 0, 0], dtype=np.uint8)
        observed = np.array([1, 0, 0, 1], dtype=np.uint8)
        flips = detect_flips(expected, observed, bank=2, row=3, mechanism="rowpress")
        assert len(flips) == 2
        directions = {flip.col: flip.direction for flip in flips}
        assert directions == {1: "1->0", 3: "0->1"}
        assert all(flip.mechanism == "rowpress" for flip in flips)
        assert all(flip.bank == 2 and flip.row == 3 for flip in flips)

    def test_no_flips(self):
        row = np.zeros(8, dtype=np.uint8)
        assert detect_flips(row, row.copy(), 0, 0, "rowhammer") == []

    def test_cellflip_direction_property(self):
        flip = CellFlip(bank=0, row=1, col=2, before=1, after=0, mechanism="rowhammer")
        assert flip.direction == "1->0"
