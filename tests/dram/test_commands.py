"""Tests for the DRAM command vocabulary and trace container."""

import pytest

from repro.dram.commands import CommandTrace, CommandType, DramCommand


class TestDramCommand:
    def test_activation_and_precharge_predicates(self):
        act = DramCommand(CommandType.ACT, bank=0, row=1, cycle=0)
        pre = DramCommand(CommandType.PRE, bank=0, row=1, cycle=10, open_cycles=10)
        assert act.is_activation() and not act.is_precharge()
        assert pre.is_precharge() and not pre.is_activation()

    def test_str_of_command_type(self):
        assert str(CommandType.NRR) == "NRR"


class TestCommandTrace:
    def _trace(self):
        trace = CommandTrace()
        trace.extend(
            [
                DramCommand(CommandType.ACT, 0, 5, cycle=0),
                DramCommand(CommandType.PRE, 0, 5, cycle=40, open_cycles=40),
                DramCommand(CommandType.ACT, 0, 7, cycle=60),
                DramCommand(CommandType.PRE, 0, 7, cycle=100, open_cycles=40),
                DramCommand(CommandType.ACT, 1, 5, cycle=120),
                DramCommand(CommandType.REF, -1, -1, cycle=200),
            ]
        )
        return trace

    def test_length_and_iteration(self):
        trace = self._trace()
        assert len(trace) == 6
        assert [c.command for c in trace][:2] == [CommandType.ACT, CommandType.PRE]

    def test_out_of_order_append_rejected(self):
        trace = self._trace()
        with pytest.raises(ValueError):
            trace.append(DramCommand(CommandType.ACT, 0, 1, cycle=10))

    def test_filter(self):
        trace = self._trace()
        assert len(trace.filter(CommandType.ACT)) == 3
        assert len(trace.filter(CommandType.REF)) == 1

    def test_activation_count_scoping(self):
        trace = self._trace()
        assert trace.activation_count() == 3
        assert trace.activation_count(bank=0) == 2
        assert trace.activation_count(bank=0, row=5) == 1
        assert trace.activation_count(bank=2) == 0

    def test_max_open_window(self):
        trace = self._trace()
        assert trace.max_open_window() == 40
        assert trace.max_open_window(bank=1) == 0

    def test_duration_and_summary(self):
        trace = self._trace()
        assert trace.duration_cycles == 200
        summary = trace.summary()
        assert summary["ACT"] == 3
        assert summary["total"] == 6
        assert summary["duration_cycles"] == 200

    def test_empty_trace(self):
        trace = CommandTrace()
        assert trace.duration_cycles == 0
        assert trace.activation_count() == 0
