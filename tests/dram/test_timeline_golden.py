"""Golden differential suite: timeline engine vs the per-command reference.

The command-timeline engine keeps two implementations under the golden
contract of docs/ENGINES.md: ``engine="reference"`` walks the command
stream one event at a time, ``engine="vectorized"`` evaluates one array
pass per tREFI window.  These tests pin them bit-for-bit — flips (values
*and* order), the windows flips latched in, per-window statistics, TRR
sampling histograms and the refresh/NRR counters — across seeds, bank
geometries and aggressor patterns, extending the parametrization style of
tests/faults/test_golden_equivalence.py to the timeline layer.
"""

import numpy as np
import pytest

from repro.defenses.trr import TRR_SAMPLING_POLICIES, TrrSampler
from repro.dram.chip import DramChip
from repro.dram.geometry import DramGeometry
from repro.dram.timeline import (
    CommandTimeline,
    TimelineEngine,
    build_hammer_timeline,
    build_press_timeline,
    build_refsync_timeline,
)
from repro.dram.timing import DramTimings
from repro.dram.vulnerability import VulnerabilityParameters

TIMINGS = DramTimings()

#: Thresholds with an onset a few hundred ACTs / a few thousand open cycles
#: so per-tREFI accumulation (~306 hammer slots per window) produces flips.
TIMELINE_PARAMS = VulnerabilityParameters(
    rh_density=0.15,
    rh_threshold_min=300.0,
    rh_threshold_log_mean=float(np.log(600.0)),
    rh_threshold_log_sigma=0.6,
    rp_density=0.2,
    rp_threshold_min=30_000.0,
    rp_threshold_log_mean=float(np.log(60_000.0)),
    rp_threshold_log_sigma=0.6,
)

GEOMETRIES = [
    DramGeometry(num_banks=1, rows_per_bank=64, cols_per_row=512),
    DramGeometry(num_banks=2, rows_per_bank=48, cols_per_row=256),
]


def flip_tuples(flips):
    return [(f.bank, f.row, f.col, f.before, f.after, f.mechanism) for f in flips]


def make_chip(engine, geometry, seed, ones_rows):
    """A chip for one engine with the listed (bank, row) pairs set to ones."""
    chip = DramChip(
        geometry,
        timings=TIMINGS,
        vulnerability_parameters=TIMELINE_PARAMS,
        seed=seed,
        engine=engine,
    )
    ones = np.ones(geometry.cols_per_row, dtype=np.uint8)
    for bank, row in ones_rows:
        chip.bank(bank).write_row(row, ones)
    return chip


def run_both(timeline, geometry, seed, ones_rows, sampler_factory=None, refresh_bins=8):
    """Run ``timeline`` on fresh reference and vectorized chips."""
    results = []
    for engine in ("reference", "vectorized"):
        chip = make_chip(engine, geometry, seed, ones_rows)
        sampler = sampler_factory() if sampler_factory else None
        results.append(
            TimelineEngine(
                chip, sampler=sampler, refresh_bins=refresh_bins, engine=engine
            ).run(timeline)
        )
    return results


def assert_identical(reference, vectorized):
    """Full bit-identity of two TimelineResult objects."""
    assert flip_tuples(reference.flips) == flip_tuples(vectorized.flips)
    assert reference.flip_windows == vectorized.flip_windows
    assert [w.to_dict() for w in reference.windows] == [
        w.to_dict() for w in vectorized.windows
    ]
    assert reference.sampling_histogram == vectorized.sampling_histogram
    assert reference.refs_issued == vectorized.refs_issued
    assert reference.nrr_rows_issued == vectorized.nrr_rows_issued
    assert reference.duration_cycles == vectorized.duration_cycles


def merge_timelines(primary, secondary):
    """Interleave two per-bank timelines, keeping only the primary's REFs.

    Both inputs must span the same windows; the merge re-sorts by cycle
    (stable), producing a multi-bank stream whose REF placement is still
    exactly one per boundary.
    """
    keep = secondary.ops != 2  # drop the secondary's REFs
    ops = np.concatenate([primary.ops, secondary.ops[keep]])
    banks = np.concatenate([primary.banks, secondary.banks[keep]])
    rows = np.concatenate([primary.rows, secondary.rows[keep]])
    cycles = np.concatenate([primary.cycles, secondary.cycles[keep]])
    opens = np.concatenate([primary.open_cycles, secondary.open_cycles[keep]])
    order = np.argsort(cycles, kind="stable")
    return CommandTimeline(
        ops=ops[order], banks=banks[order], rows=rows[order],
        cycles=cycles[order], open_cycles=opens[order],
    )


class TestHammerPatterns:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    @pytest.mark.parametrize("geometry", GEOMETRIES, ids=["1x64", "2x48"])
    def test_double_sided_identical(self, seed, geometry):
        timeline = build_hammer_timeline(
            TIMINGS, bank=0, aggressor_rows=(23, 25), windows=16, acts_per_window=80
        )
        reference, vectorized = run_both(
            timeline, geometry, seed, [(0, 23), (0, 25)]
        )
        assert_identical(reference, vectorized)
        assert reference.total_flips > 0  # the case must exercise flips

    @pytest.mark.parametrize("seed", [0, 7])
    def test_single_sided_identical(self, seed):
        geometry = GEOMETRIES[0]
        timeline = build_hammer_timeline(
            TIMINGS, bank=0, aggressor_rows=(30,), windows=12, acts_per_window=120
        )
        reference, vectorized = run_both(timeline, geometry, seed, [(0, 30)])
        assert_identical(reference, vectorized)

    @pytest.mark.parametrize("seed", [2, 9])
    def test_many_sided_identical(self, seed):
        geometry = GEOMETRIES[0]
        aggressors = (10, 12, 14, 40, 42)
        timeline = build_hammer_timeline(
            TIMINGS, bank=0, aggressor_rows=aggressors, windows=10, acts_per_window=100
        )
        reference, vectorized = run_both(
            timeline, geometry, seed, [(0, row) for row in aggressors]
        )
        assert_identical(reference, vectorized)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_multi_bank_interleaved_identical(self, seed):
        geometry = GEOMETRIES[1]
        bank0 = build_hammer_timeline(
            TIMINGS, bank=0, aggressor_rows=(20, 22), windows=8, acts_per_window=90
        )
        bank1 = build_hammer_timeline(
            TIMINGS, bank=1, aggressor_rows=(8, 10), windows=8, acts_per_window=60
        )
        merged = merge_timelines(bank0, bank1)
        merged.validate(TIMINGS, geometry)
        reference, vectorized = run_both(
            merged, geometry, seed, [(0, 20), (0, 22), (1, 8), (1, 10)]
        )
        assert_identical(reference, vectorized)

    @pytest.mark.parametrize("seed", [0, 4])
    def test_trailing_partial_window_identical(self, seed):
        geometry = GEOMETRIES[0]
        full = build_hammer_timeline(
            TIMINGS, bank=0, aggressor_rows=(23, 25), windows=12, acts_per_window=100
        )
        # Strip the final REF: the last window becomes a trailing partial
        # window that latches flips at end-of-trace without refreshing.
        truncated = CommandTimeline(
            ops=full.ops[:-1], banks=full.banks[:-1], rows=full.rows[:-1],
            cycles=full.cycles[:-1], open_cycles=full.open_cycles[:-1],
        )
        truncated.validate(TIMINGS, geometry)
        reference, vectorized = run_both(truncated, geometry, seed, [(0, 23), (0, 25)])
        assert_identical(reference, vectorized)
        assert not reference.windows[-1].refreshed
        assert reference.refs_issued == 11


class TestPressPatterns:
    @pytest.mark.parametrize("seed", [1, 5])
    def test_press_timeline_identical(self, seed):
        geometry = GEOMETRIES[0]
        timeline = build_press_timeline(
            TIMINGS, bank=0, pressed_rows=(20,), windows=10,
            opens_per_window=3, open_cycles=5_000,
        )
        reference, vectorized = run_both(timeline, geometry, seed, [(0, 20)])
        assert_identical(reference, vectorized)

    def test_adjacent_pressed_rows_identical(self):
        # Rows pressing each other (closer than the press_many spacing
        # floor) are legal on the timeline: window-synchronous accumulation
        # handles the shared victims with multiplicity on both engines.
        geometry = GEOMETRIES[0]
        timeline = build_press_timeline(
            TIMINGS, bank=0, pressed_rows=(20, 21), windows=8,
            opens_per_window=4, open_cycles=4_000,
        )
        reference, vectorized = run_both(
            timeline, geometry, 3, [(0, 20), (0, 21)]
        )
        assert_identical(reference, vectorized)


class TestSampledDefense:
    @pytest.mark.parametrize("seed", [0, 11])
    @pytest.mark.parametrize("policy", sorted(TRR_SAMPLING_POLICIES))
    def test_decoyed_refsync_identical_under_every_policy(self, seed, policy):
        geometry = GEOMETRIES[0]
        timeline = build_refsync_timeline(
            TIMINGS, bank=0, aggressor_rows=(23, 25), windows=16,
            acts_per_window=80, phase=3, decoy_rows=(2, 6, 10),
        )
        ones = [(0, row) for row in (23, 25, 2, 6, 10)]
        reference, vectorized = run_both(
            timeline, geometry, seed, ones,
            sampler_factory=lambda: TrrSampler(capacity=2, policy=policy, seed=5),
            refresh_bins=8,
        )
        assert_identical(reference, vectorized)
        assert reference.nrr_rows_issued > 0

    def test_sampler_defeats_unphased_attack_on_both_engines(self):
        geometry = GEOMETRIES[0]
        timeline = build_hammer_timeline(
            TIMINGS, bank=0, aggressor_rows=(23, 25), windows=16, acts_per_window=80
        )
        reference, vectorized = run_both(
            timeline, geometry, 0, [(0, 23), (0, 25)],
            sampler_factory=lambda: TrrSampler(capacity=2, policy="first", seed=0),
        )
        assert_identical(reference, vectorized)
        # Both aggressors are sampled every window -> victims NRR'd -> no flips.
        assert reference.total_flips == 0
        assert reference.mean_sampled_fraction == 1.0


class TestRefreshBins:
    @pytest.mark.parametrize("refresh_bins", [1, 4, 16])
    def test_bin_schedule_identical(self, refresh_bins):
        geometry = GEOMETRIES[0]
        timeline = build_hammer_timeline(
            TIMINGS, bank=0, aggressor_rows=(23, 25), windows=20, acts_per_window=80
        )
        reference, vectorized = run_both(
            timeline, geometry, 3, [(0, 23), (0, 25)], refresh_bins=refresh_bins
        )
        assert_identical(reference, vectorized)

    def test_full_refresh_every_ref_prevents_flips(self):
        # refresh_bins=1 heals every row at every REF; per-window
        # accumulation (80 ACTs) never reaches the 300-ACT onset.
        geometry = GEOMETRIES[0]
        timeline = build_hammer_timeline(
            TIMINGS, bank=0, aggressor_rows=(23, 25), windows=20, acts_per_window=80
        )
        reference, vectorized = run_both(
            timeline, geometry, 3, [(0, 23), (0, 25)], refresh_bins=1
        )
        assert_identical(reference, vectorized)
        assert reference.total_flips == 0


class TestCompiledTier:
    def test_compiled_engine_matches_vectorized(self):
        # The compiled tier has no dedicated timeline kernels; it must take
        # the vectorized pass and stay on the golden contract.
        geometry = GEOMETRIES[0]
        timeline = build_hammer_timeline(
            TIMINGS, bank=0, aggressor_rows=(23, 25), windows=12, acts_per_window=90
        )
        chip_v = make_chip("vectorized", geometry, 0, [(0, 23), (0, 25)])
        chip_c = make_chip("compiled", geometry, 0, [(0, 23), (0, 25)])
        vectorized = TimelineEngine(chip_v, refresh_bins=8).run(timeline)
        compiled = TimelineEngine(chip_c, refresh_bins=8, engine="compiled").run(timeline)
        assert_identical(vectorized, compiled)
