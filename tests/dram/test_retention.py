"""Tests for the retention-time model."""

import pytest

from repro.dram.geometry import DramGeometry
from repro.dram.retention import RetentionModel
from repro.dram.timing import DramTimings


@pytest.fixture
def model():
    return RetentionModel(DramGeometry(num_banks=2, rows_per_bank=64, cols_per_row=16), seed=3)


class TestRetentionModel:
    def test_retention_exceeds_refresh_window(self, model):
        # Every row must retain data at least as long as the refresh window.
        timings = DramTimings()
        for bank in range(2):
            for row in range(64):
                assert model.retention_time_ms(bank, row) >= timings.t_refw_ms

    def test_deterministic_for_seed(self):
        geometry = DramGeometry(num_banks=1, rows_per_bank=8, cols_per_row=4)
        a = RetentionModel(geometry, seed=1)
        b = RetentionModel(geometry, seed=1)
        assert a.retention_time_ms(0, 3) == b.retention_time_ms(0, 3)

    def test_survives_semantics(self, model):
        retention = model.retention_time_ms(0, 0)
        assert model.survives(0, 0, retention - 1)
        assert not model.survives(0, 0, retention + 1)

    def test_negative_interval_rejected(self, model):
        with pytest.raises(ValueError):
            model.survives(0, 0, -1)

    def test_max_safe_open_window_bounded_by_refresh_window(self, model):
        timings = DramTimings()
        assert model.max_safe_open_window_cycles(0, 0) <= timings.t_refw_cycles

    def test_out_of_range_row(self, model):
        with pytest.raises(IndexError):
            model.retention_time_ms(0, 999)
