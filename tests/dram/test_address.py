"""Tests for the flat-address <-> cell-coordinate mapping."""

import numpy as np
import pytest

from repro.dram.address import AddressMapper, CellAddress
from repro.dram.geometry import DramGeometry


@pytest.fixture
def mapper():
    return AddressMapper(DramGeometry(num_banks=2, rows_per_bank=4, cols_per_row=8))


class TestAddressMapper:
    def test_capacity(self, mapper):
        assert mapper.capacity_bits == 2 * 4 * 8

    def test_roundtrip_all_addresses(self, mapper):
        for flat in range(mapper.capacity_bits):
            cell = mapper.to_cell(flat)
            assert mapper.to_flat(cell) == flat

    def test_bijection(self, mapper):
        cells = {mapper.to_cell(flat).as_tuple() for flat in range(mapper.capacity_bits)}
        assert len(cells) == mapper.capacity_bits

    def test_consecutive_bits_fill_a_row(self, mapper):
        first = mapper.to_cell(0)
        second = mapper.to_cell(1)
        assert first.bank == second.bank and first.row == second.row
        assert second.col == first.col + 1

    def test_rows_rotate_across_banks(self, mapper):
        cols = mapper.geometry.cols_per_row
        assert mapper.to_cell(0).bank == 0
        assert mapper.to_cell(cols).bank == 1

    def test_out_of_range_rejected(self, mapper):
        with pytest.raises(IndexError):
            mapper.to_cell(mapper.capacity_bits)
        with pytest.raises(IndexError):
            mapper.to_flat(CellAddress(bank=99, row=0, col=0))

    def test_vector_forms(self, mapper):
        flats = [0, 5, 17, 33]
        cells = mapper.to_cells(flats)
        assert np.array_equal(mapper.to_flats(cells), np.asarray(flats))

    def test_page_frame(self, mapper):
        frame, offset = mapper.page_frame(10, page_size_bits=16)
        assert (frame, offset) == (0, 10)
        frame, offset = mapper.page_frame(35, page_size_bits=16)
        assert (frame, offset) == (2, 3)

    def test_region(self, mapper):
        region = mapper.region(start_bit=4, num_bits=6)
        assert len(region) == 6
        with pytest.raises(ValueError):
            mapper.region(start_bit=mapper.capacity_bits - 2, num_bits=10)


class TestCellAddress:
    def test_ordering_and_tuple(self):
        a = CellAddress(0, 1, 2)
        b = CellAddress(0, 1, 3)
        assert a < b
        assert a.as_tuple() == (0, 1, 2)
