"""Tests for bank-level data storage and read-disturbance physics."""

import numpy as np
import pytest

from repro.dram.bank import DramBank
from repro.dram.geometry import DramGeometry
from repro.dram.vulnerability import BankVulnerabilityMap, CellVulnerabilityModel, VulnerabilityParameters


def make_manual_bank():
    """Bank with a hand-built vulnerability map for deterministic physics tests.

    Row 5 has two RowHammer-vulnerable cells (cols 3 and 10) and row 7 / 9
    have RowPress-vulnerable cells (cols 1 and 2).
    """
    geometry = DramGeometry(num_banks=1, rows_per_bank=16, cols_per_row=32)
    vulnerability = BankVulnerabilityMap(
        bank=0,
        rh_rows=np.array([5, 5]),
        rh_cols=np.array([3, 10]),
        rh_thresholds=np.array([10_000.0, 50_000.0]),
        rh_directions=np.array([0, 1], dtype=np.int8),  # 0->1 and 1->0
        rp_rows=np.array([7, 9]),
        rp_cols=np.array([1, 2]),
        rp_thresholds=np.array([1_000_000.0, 5_000_000.0]),
        rp_directions=np.array([0, 0], dtype=np.int8),
        )
    return DramBank(0, geometry, vulnerability)


class TestDataAccess:
    def test_write_read_row(self):
        bank = make_manual_bank()
        row = np.ones(32, dtype=np.uint8)
        bank.write_row(4, row)
        assert np.array_equal(bank.read_row(4), row)

    def test_write_row_validates_shape_and_values(self):
        bank = make_manual_bank()
        with pytest.raises(ValueError):
            bank.write_row(0, np.ones(5, dtype=np.uint8))
        with pytest.raises(ValueError):
            bank.write_row(0, np.full(32, 2, dtype=np.uint8))

    def test_bit_access(self):
        bank = make_manual_bank()
        bank.write_bit(3, 7, 1)
        assert bank.read_bit(3, 7) == 1
        with pytest.raises(ValueError):
            bank.write_bit(3, 7, 5)

    def test_write_row_refreshes_accumulators(self):
        bank = make_manual_bank()
        bank.hammer_accumulator[5] = 100.0
        bank.write_row(5, np.zeros(32, dtype=np.uint8))
        assert bank.hammer_accumulator[5] == 0.0


class TestHammerPhysics:
    def test_no_flip_below_threshold(self):
        bank = make_manual_bank()
        bank.write_row(5, np.zeros(32, dtype=np.uint8))
        bank.write_row(4, np.ones(32, dtype=np.uint8))
        bank.write_row(6, np.ones(32, dtype=np.uint8))
        flips = bank.hammer([4, 6], hammer_count=5_000)
        assert flips == []

    def test_flip_above_threshold_with_matching_direction(self):
        bank = make_manual_bank()
        bank.write_row(5, np.zeros(32, dtype=np.uint8))  # victim all 0s
        bank.write_row(4, np.ones(32, dtype=np.uint8))
        bank.write_row(6, np.ones(32, dtype=np.uint8))
        flips = bank.hammer([4, 6], hammer_count=20_000)
        # Only the 0->1 cell (col 3, threshold 10k) can flip: stored bit is 0.
        assert [(f.row, f.col, f.after) for f in flips] == [(5, 3, 1)]

    def test_direction_blocks_flip(self):
        bank = make_manual_bank()
        bank.write_row(5, np.zeros(32, dtype=np.uint8))
        bank.write_row(4, np.ones(32, dtype=np.uint8))
        bank.write_row(6, np.ones(32, dtype=np.uint8))
        flips = bank.hammer([4, 6], hammer_count=100_000)
        # Col 10 is a 1->0 cell but the victim stores 0 there, so it never flips.
        assert all(flip.col != 10 for flip in flips)

    def test_no_flip_when_data_matches_aggressor(self):
        bank = make_manual_bank()
        bank.write_row(5, np.ones(32, dtype=np.uint8))
        bank.write_row(4, np.ones(32, dtype=np.uint8))
        bank.write_row(6, np.ones(32, dtype=np.uint8))
        assert bank.hammer([4, 6], hammer_count=200_000) == []

    def test_accumulation_across_calls(self):
        bank = make_manual_bank()
        bank.write_row(5, np.zeros(32, dtype=np.uint8))
        bank.write_row(4, np.ones(32, dtype=np.uint8))
        bank.write_row(6, np.ones(32, dtype=np.uint8))
        assert bank.hammer([4, 6], hammer_count=6_000) == []
        flips = bank.hammer([4, 6], hammer_count=6_000)  # cumulative 12k > 10k
        assert len(flips) == 1

    def test_refresh_resets_accumulation(self):
        bank = make_manual_bank()
        bank.write_row(5, np.zeros(32, dtype=np.uint8))
        bank.write_row(4, np.ones(32, dtype=np.uint8))
        bank.write_row(6, np.ones(32, dtype=np.uint8))
        bank.hammer([4, 6], hammer_count=6_000)
        bank.refresh_row(5)
        assert bank.hammer([4, 6], hammer_count=6_000) == []

    def test_flip_happens_once(self):
        bank = make_manual_bank()
        bank.write_row(5, np.zeros(32, dtype=np.uint8))
        bank.write_row(4, np.ones(32, dtype=np.uint8))
        bank.write_row(6, np.ones(32, dtype=np.uint8))
        first = bank.hammer([4, 6], hammer_count=20_000)
        second = bank.hammer([4, 6], hammer_count=20_000)
        assert len(first) == 1 and second == []

    def test_aggressor_activation_counts_recorded(self):
        bank = make_manual_bank()
        bank.hammer([4, 6], hammer_count=1_000)
        assert bank.activation_counts[4] == 1_000
        assert bank.activation_counts[6] == 1_000

    def test_negative_count_rejected(self):
        bank = make_manual_bank()
        with pytest.raises(ValueError):
            bank.hammer([4], hammer_count=-1)


class TestPressPhysics:
    def test_press_flips_adjacent_pattern_rows(self):
        bank = make_manual_bank()
        bank.write_row(8, np.zeros(32, dtype=np.uint8))  # pressed row
        bank.write_row(7, np.ones(32, dtype=np.uint8))
        bank.write_row(9, np.ones(32, dtype=np.uint8))
        # RP cells are 0->1 but rows 7/9 store 1s there -> rewrite with zeros
        bank.write_row(7, np.zeros(32, dtype=np.uint8))
        bank.write_row(9, np.zeros(32, dtype=np.uint8))
        bank.write_row(8, np.ones(32, dtype=np.uint8))
        flips = bank.press(8, open_cycles=2_000_000)
        assert [(f.row, f.col) for f in flips] == [(7, 1)]

    def test_press_single_activation_recorded(self):
        bank = make_manual_bank()
        bank.press(8, open_cycles=1_000)
        assert bank.activation_counts[8] == 1

    def test_press_accumulates_over_repetitions(self):
        bank = make_manual_bank()
        bank.write_row(7, np.zeros(32, dtype=np.uint8))
        bank.write_row(8, np.ones(32, dtype=np.uint8))
        assert bank.press(8, open_cycles=600_000) == []
        flips = bank.press(8, open_cycles=600_000)
        assert len(flips) == 1

    def test_unknown_mechanism_rejected(self):
        bank = make_manual_bank()
        with pytest.raises(ValueError):
            bank._evaluate_row_flips(5, [4], mechanism="rowsmash")


class TestSampledBank:
    def test_sampled_vulnerability_produces_flips(self):
        geometry = DramGeometry(num_banks=1, rows_per_bank=32, cols_per_row=512)
        params = VulnerabilityParameters(rh_density=0.05, rp_density=0.25)
        model = CellVulnerabilityModel(geometry, params, seed=1)
        bank = DramBank(0, geometry, model.bank_map(0))
        bank.write_row(10, np.zeros(512, dtype=np.uint8))
        bank.write_row(9, np.ones(512, dtype=np.uint8))
        bank.write_row(11, np.ones(512, dtype=np.uint8))
        flips = bank.hammer([9, 11], hammer_count=1_000_000)
        assert len(flips) > 0
        # The double-sided pair disturbs the enclosed victim (row 10) and the
        # outer neighbours of each aggressor (rows 8 and 12).
        assert {flip.row for flip in flips} <= {8, 10, 12}
        assert any(flip.row == 10 for flip in flips)
