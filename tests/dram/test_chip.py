"""Tests for the chip-level model."""

import numpy as np
import pytest

from repro.dram.address import CellAddress
from repro.dram.chip import ChipInfo, DramChip
from repro.dram.geometry import DramGeometry


@pytest.fixture
def chip():
    return DramChip(DramGeometry(num_banks=2, rows_per_bank=16, cols_per_row=64), seed=1)


class TestBankManagement:
    def test_banks_are_lazy(self, chip):
        assert chip.instantiated_banks == []
        chip.bank(1)
        assert chip.instantiated_banks == [1]

    def test_bank_identity_is_stable(self, chip):
        assert chip.bank(0) is chip.bank(0)

    def test_invalid_bank(self, chip):
        with pytest.raises(IndexError):
            chip.bank(5)

    def test_reset_drops_state_but_keeps_vulnerability(self, chip):
        bank_map_before = chip.bank(0).vulnerability
        chip.write_row(0, 3, np.ones(64, dtype=np.uint8))
        chip.reset()
        assert chip.instantiated_banks == []
        assert chip.read_row(0, 3).sum() == 0
        bank_map_after = chip.bank(0).vulnerability
        assert np.array_equal(bank_map_before.rp_cols, bank_map_after.rp_cols)


class TestDataAccess:
    def test_row_roundtrip(self, chip):
        row = np.ones(64, dtype=np.uint8)
        chip.write_row(1, 4, row)
        assert np.array_equal(chip.read_row(1, 4), row)

    def test_bit_roundtrip_by_address(self, chip):
        address = CellAddress(bank=1, row=2, col=3)
        chip.write_bit(address, 1)
        assert chip.read_bit(address) == 1

    def test_flat_bits_roundtrip(self, chip):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        chip.write_bits_flat(100, bits)
        assert np.array_equal(chip.read_bits_flat(100, 8), bits)


class TestDisturbanceAndInfo:
    def test_hammer_and_press_delegate_to_bank(self, chip):
        chip.write_row(0, 5, np.zeros(64, dtype=np.uint8))
        chip.write_row(0, 4, np.ones(64, dtype=np.uint8))
        chip.write_row(0, 6, np.ones(64, dtype=np.uint8))
        flips = chip.hammer(0, [4, 6], 10_000_000)
        assert isinstance(flips, list)
        flips = chip.press(0, 5, 10_000_000)
        assert isinstance(flips, list)

    def test_refresh_all_resets_accumulators(self, chip):
        chip.hammer(0, [4, 6], 1000)
        chip.refresh_all()
        assert chip.bank(0).hammer_accumulator.sum() == 0

    def test_vulnerability_statistics_shape(self, chip):
        stats = chip.vulnerability_statistics()
        assert {"rh_cells", "rp_cells", "overlap_fraction_of_union"} <= set(stats)

    def test_describe_mentions_geometry_and_vendor(self, chip):
        text = chip.describe()
        assert "banks" in text and ChipInfo().manufacturer in text
