"""Tests for DDR4 timing parameters."""

import pytest

from repro.dram.timing import SPEED_GRADES, DramTimings, get_speed_grade


class TestDramTimings:
    def test_default_is_ddr4_2400(self):
        timings = DramTimings()
        assert timings.frequency_mhz == 2400.0
        assert timings.t_refw_ms == 64.0

    def test_clock_period(self):
        assert DramTimings().t_ck_ns == pytest.approx(1e3 / 2400.0)

    def test_refresh_window_cycles(self):
        timings = DramTimings()
        # 64 ms at 2400 MHz = 153.6 M cycles.
        assert timings.t_refw_cycles == pytest.approx(153_600_000, rel=1e-6)

    def test_hammer_iteration_cycles(self):
        timings = DramTimings(t_ras_cycles=39, t_rp_cycles=17, hammer_sleep_cycles=5)
        # ACT + Sleep(5 tCK) + PRE, as described in Section V-A.
        assert timings.hammer_iteration_cycles == 39 + 5 + 17

    def test_cycles_ms_roundtrip(self):
        timings = DramTimings()
        assert timings.cycles_to_ms(timings.ms_to_cycles(3.5)) == pytest.approx(3.5)

    def test_hammer_counts_to_cycles(self):
        timings = DramTimings()
        assert timings.hammer_counts_to_cycles(10) == 10 * timings.hammer_iteration_cycles

    def test_max_open_window_is_refresh_window(self):
        timings = DramTimings()
        assert timings.max_open_window_cycles() == timings.t_refw_cycles

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DramTimings(frequency_mhz=0)
        with pytest.raises(ValueError):
            DramTimings(t_ras_cycles=0)


class TestSpeedGrades:
    def test_known_grades_present(self):
        assert {"DDR4-2133", "DDR4-2400", "DDR4-3200"} <= set(SPEED_GRADES)

    def test_lookup(self):
        assert get_speed_grade("DDR4-3200").frequency_mhz == 3200.0

    def test_unknown_grade_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="DDR4-2400"):
            get_speed_grade("DDR5-4800")

    def test_faster_grades_have_shorter_clock(self):
        assert SPEED_GRADES["DDR4-3200"].t_ck_ns < SPEED_GRADES["DDR4-2133"].t_ck_ns
