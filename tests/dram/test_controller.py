"""Tests for the memory controller."""

import numpy as np
import pytest

from repro.dram.chip import DramChip
from repro.dram.commands import CommandType
from repro.dram.controller import MemoryController
from repro.dram.geometry import DramGeometry
from repro.dram.vulnerability import VulnerabilityParameters
from repro.defenses.graphene import GrapheneDefense


@pytest.fixture
def chip():
    params = VulnerabilityParameters(rh_density=0.05, rp_density=0.25)
    return DramChip(
        DramGeometry(num_banks=1, rows_per_bank=32, cols_per_row=512),
        vulnerability_parameters=params,
        seed=7,
    )


def prepare_double_sided(chip, victim=10):
    chip.write_row(0, victim, np.zeros(512, dtype=np.uint8))
    chip.write_row(0, victim - 1, np.ones(512, dtype=np.uint8))
    chip.write_row(0, victim + 1, np.ones(512, dtype=np.uint8))


class TestBasicCommands:
    def test_activate_advances_time_and_counts(self, chip):
        controller = MemoryController(chip, record_trace=True)
        controller.activate(0, 3)
        assert controller.stats.activations == 1
        assert controller.current_cycle == chip.timings.t_ras_cycles
        assert controller.trace[0].command is CommandType.ACT

    def test_precharge_records_open_window(self, chip):
        controller = MemoryController(chip, record_trace=True)
        controller.precharge(0, 3, open_cycles=123)
        assert controller.trace[0].open_cycles == 123

    def test_refresh_resets_accumulators(self, chip):
        controller = MemoryController(chip)
        prepare_double_sided(chip)
        controller.hammer_rows(0, [9, 11], 10_000)
        controller.refresh()
        assert chip.bank(0).hammer_accumulator.sum() == 0
        assert controller.stats.refreshes == 1


class TestHammerRows:
    def test_produces_flips_without_defense(self, chip):
        controller = MemoryController(chip)
        prepare_double_sided(chip)
        flips = controller.hammer_rows(0, [9, 11], 800_000)
        assert len(flips) > 0
        assert controller.stats.total_flips == len(flips)

    def test_zero_count_is_noop(self, chip):
        controller = MemoryController(chip)
        assert controller.hammer_rows(0, [9, 11], 0) == []

    def test_time_accounting(self, chip):
        controller = MemoryController(chip)
        prepare_double_sided(chip)
        controller.hammer_rows(0, [9, 11], 1000)
        expected = 1000 * 2 * chip.timings.hammer_iteration_cycles
        assert controller.current_cycle == expected

    def test_defense_receives_activations_and_mitigates(self, chip):
        defense = GrapheneDefense(mac_threshold=4096)
        controller = MemoryController(chip, defenses=[defense])
        prepare_double_sided(chip)
        flips = controller.hammer_rows(0, [9, 11], 800_000)
        assert flips == []
        assert controller.stats.nearby_row_refreshes > 0
        assert defense.stats.observed_activations == 2 * 800_000


class TestPressRow:
    def test_produces_flips_and_single_activation_per_window(self, chip):
        controller = MemoryController(chip)
        chip.write_row(0, 20, np.ones(512, dtype=np.uint8))
        chip.write_row(0, 19, np.zeros(512, dtype=np.uint8))
        chip.write_row(0, 21, np.zeros(512, dtype=np.uint8))
        flips = controller.press_row(0, 20, 80_000_000)
        assert len(flips) > 0
        assert controller.stats.activations == 1

    def test_open_window_bounded_by_refresh_window(self, chip):
        controller = MemoryController(chip)
        too_long = chip.timings.max_open_window_cycles() + 1
        with pytest.raises(ValueError, match="refresh window"):
            controller.press_row(0, 20, too_long)

    def test_press_bypasses_counter_defense(self, chip):
        defense = GrapheneDefense(mac_threshold=4096)
        controller = MemoryController(chip, defenses=[defense])
        chip.write_row(0, 20, np.ones(512, dtype=np.uint8))
        chip.write_row(0, 19, np.zeros(512, dtype=np.uint8))
        chip.write_row(0, 21, np.zeros(512, dtype=np.uint8))
        flips = controller.press_row(0, 20, 80_000_000)
        assert len(flips) > 0
        assert defense.stats.triggers == 0
        assert controller.stats.nearby_row_refreshes == 0

    def test_press_repeated_accumulates(self, chip):
        controller = MemoryController(chip)
        chip.write_row(0, 20, np.ones(512, dtype=np.uint8))
        chip.write_row(0, 19, np.zeros(512, dtype=np.uint8))
        chip.write_row(0, 21, np.zeros(512, dtype=np.uint8))
        once = len(controller.press_row(0, 20, 30_000_000))
        more = len(controller.press_row_repeated(0, 20, 30_000_000, repetitions=3))
        assert once + more >= once  # repetitions never reduce flips
        assert controller.stats.activations == 4

    def test_elapsed_ms(self, chip):
        controller = MemoryController(chip)
        controller.press_row(0, 20, 2_400_000)  # 1 ms of open window
        assert controller.elapsed_ms() >= 1.0


class TestAutoRefresh:
    def test_auto_refresh_triggers_on_refresh_window(self, chip):
        controller = MemoryController(chip, auto_refresh=True)
        window = chip.timings.t_refw_cycles
        controller._advance(window + 1)
        assert controller.stats.refreshes >= 1
