"""Stage decompositions and the incremental suffix-re-execution engine.

The contract under test: composing a model's ``forward_stages`` is
bit-identical to its ``forward``, and the :class:`SuffixEvaluator` cache —
through commits (``invalidate_from``), trials (``peek``) and graph passes
(``forward_tensor``) — always returns exactly what a fresh full forward
would.
"""

import numpy as np
import pytest

from repro.models.deit import deit_tiny
from repro.models.m11 import M11
from repro.models.resnet_cifar import ResNetCifar
from repro.models.resnet_imagenet import resnet34, resnet50
from repro.models.vmamba import vmamba_tiny
from repro.nn.autograd import Tensor
from repro.nn.inference import SuffixEvaluator, TrialFlip
from repro.nn.layers import Linear
from repro.nn.layers.container import Sequential
from repro.nn.module import Module
from repro.nn.quantization import quantize_model, quantized_parameters


def model_zoo():
    rng = np.random.default_rng(0)
    return [
        (
            ResNetCifar(depth=8, num_classes=4, base_width=8, rng=np.random.default_rng(1)),
            rng.normal(size=(3, 3, 8, 8)),
        ),
        (resnet34(num_classes=5, base_width=4, rng=np.random.default_rng(2)), rng.normal(size=(2, 3, 8, 8))),
        (resnet50(num_classes=5, base_width=4, rng=np.random.default_rng(3)), rng.normal(size=(2, 3, 8, 8))),
        (M11(num_classes=5, base_width=4, rng=np.random.default_rng(4)), rng.normal(size=(2, 1, 64))),
        (deit_tiny(num_classes=5, rng=np.random.default_rng(5)), rng.normal(size=(2, 3, 16, 16))),
        (vmamba_tiny(num_classes=5, rng=np.random.default_rng(6)), rng.normal(size=(2, 3, 16, 16))),
        (
            Sequential(
                Linear(6, 5, rng=np.random.default_rng(7)), Linear(5, 3, rng=np.random.default_rng(8))
            ),
            rng.normal(size=(2, 6)),
        ),
    ]


class TestForwardStages:
    @pytest.mark.parametrize("model,x", model_zoo(), ids=lambda v: type(v).__name__)
    def test_stage_composition_bit_identical(self, model, x):
        model.eval()
        full = model(Tensor(x)).data
        out = Tensor(np.asarray(x))
        for stage in model.forward_stages():
            out = stage.run(out)
        assert np.array_equal(full, out.data)

    @pytest.mark.parametrize("model,x", model_zoo(), ids=lambda v: type(v).__name__)
    def test_stages_cover_every_quantized_tensor(self, model, x):
        model.eval()
        try:
            quantize_model(model)
        except ValueError:
            pytest.skip("model has no quantizable tensors")
        evaluator = SuffixEvaluator(model)
        assert evaluator.supported
        assert evaluator.covers(quantized_parameters(model).values())

    def test_forward_from_resumes_bit_identically(self):
        model = ResNetCifar(depth=8, num_classes=4, base_width=8, rng=np.random.default_rng(1))
        model.eval()
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        full = model(Tensor(x)).data
        stages = model.forward_stages()
        boundary = Tensor(np.asarray(x))
        for stage in stages[:2]:
            boundary = stage.run(boundary)
        assert np.array_equal(model.forward_from(2, boundary).data, full)

    def test_forward_from_validates(self):
        model = ResNetCifar(depth=8, num_classes=4, base_width=8, rng=np.random.default_rng(1))
        with pytest.raises(IndexError):
            model.forward_from(99, Tensor(np.zeros((1, 3, 8, 8))))

        class Opaque(Module):
            def forward(self, x):
                return x

        with pytest.raises(RuntimeError, match="forward stages"):
            Opaque().forward_from(0, Tensor(np.zeros(1)))

    def test_default_module_is_not_decomposable(self):
        class Opaque(Module):
            def forward(self, x):
                return x

        assert Opaque().forward_stages() is None
        evaluator = SuffixEvaluator(Opaque())
        assert not evaluator.supported
        with pytest.raises(RuntimeError, match="forward stages"):
            evaluator.forward("k", np.zeros(1))


@pytest.fixture
def quantized_resnet():
    model = ResNetCifar(depth=8, num_classes=4, base_width=8, rng=np.random.default_rng(1))
    model.eval()
    quantize_model(model)
    return model


def msb_flip(parameter):
    """Flip the sign bit of the first weight; returns the undo callable."""
    from repro.nn.bitops import bit_flip_delta

    before = int(parameter.int_repr.flat[0])
    after = before + bit_flip_delta(before, parameter.num_bits - 1, parameter.num_bits)
    parameter.int_repr.flat[0] = after
    parameter.sync_from_int()

    def undo():
        parameter.int_repr.flat[0] = before
        parameter.sync_from_int()

    return undo


class TestSuffixEvaluator:
    def test_cached_forward_matches_full(self, quantized_resnet):
        x = np.random.default_rng(0).normal(size=(4, 3, 8, 8))
        evaluator = SuffixEvaluator(quantized_resnet)
        first = evaluator.forward("batch", x)
        again = evaluator.forward("batch", x)
        assert np.array_equal(first, quantized_resnet(Tensor(x)).data)
        assert np.array_equal(first, again)

    def test_invalidate_from_tracks_committed_flips(self, quantized_resnet):
        x = np.random.default_rng(0).normal(size=(4, 3, 8, 8))
        evaluator = SuffixEvaluator(quantized_resnet)
        evaluator.forward("batch", x)
        for name, parameter in quantized_parameters(quantized_resnet).items():
            msb_flip(parameter)
            evaluator.invalidate_from(evaluator.stage_of(parameter))
            fresh = quantized_resnet(Tensor(x)).data
            assert np.array_equal(evaluator.forward("batch", x), fresh), name

    def test_peek_evaluates_trial_without_corrupting_cache(self, quantized_resnet):
        x = np.random.default_rng(0).normal(size=(4, 3, 8, 8))
        evaluator = SuffixEvaluator(quantized_resnet)
        clean = evaluator.forward("batch", x).copy()
        for name, parameter in quantized_parameters(quantized_resnet).items():
            stage = evaluator.stage_of(parameter)
            undo = msb_flip(parameter)
            trial = evaluator.peek("batch", x, from_stage=stage)
            assert np.array_equal(trial, quantized_resnet(Tensor(x)).data), name
            undo()
            # The trial was reverted: the cache must still answer with the
            # clean output without recomputation having poisoned it.
            assert np.array_equal(evaluator.forward("batch", x), clean), name

    def test_peek_on_cold_cache(self, quantized_resnet):
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        evaluator = SuffixEvaluator(quantized_resnet)
        assert np.array_equal(
            evaluator.peek("cold", x, from_stage=3), quantized_resnet(Tensor(x)).data
        )

    def test_forward_tensor_builds_graph_and_warms_cache(self, quantized_resnet):
        x = np.random.default_rng(0).normal(size=(4, 3, 8, 8))
        evaluator = SuffixEvaluator(quantized_resnet)
        logits = evaluator.forward_tensor("batch", Tensor(x))
        assert logits.requires_grad
        logits.sum().backward()
        head = quantized_parameters(quantized_resnet)["head.weight"]
        assert head.grad is not None
        # Boundaries were recorded during the graph pass: a trial peek at
        # the last stage must now cost only that stage (and be exact).
        stage = evaluator.stage_of(head)
        undo = msb_flip(head)
        assert np.array_equal(
            evaluator.peek("batch", x, from_stage=stage),
            quantized_resnet(Tensor(x)).data,
        )
        undo()

    def test_invalidate_bounds_checked(self, quantized_resnet):
        evaluator = SuffixEvaluator(quantized_resnet)
        with pytest.raises(IndexError):
            evaluator.invalidate_from(evaluator.num_stages)

    def test_stage_map_is_memoized(self, quantized_resnet):
        evaluator = SuffixEvaluator(quantized_resnet)
        assert evaluator._stage_of_parameter is None  # built lazily
        head = quantized_parameters(quantized_resnet)["head.weight"]
        stage = evaluator.stage_of(head)
        assert stage == evaluator.num_stages - 1
        assert evaluator._stage_map() is evaluator._stage_map()  # one dict, reused

    def test_drop_and_clear(self, quantized_resnet):
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        evaluator = SuffixEvaluator(quantized_resnet)
        evaluator.forward("a", x)
        evaluator.forward("b", x)
        evaluator.drop("a")
        assert "a" not in evaluator._caches and "b" in evaluator._caches
        evaluator.clear()
        assert not evaluator._caches


def trial_flips(model, evaluator, count):
    """One MSB trial flip per quantized tensor (mixed stages, incl. shares)."""
    from repro.nn.bitops import bit_flip_delta

    trials = []
    for index, (_, parameter) in enumerate(sorted(quantized_parameters(model).items())):
        if len(trials) == count:
            break
        position = index % parameter.size
        before = int(parameter.int_repr.flat[position])
        after = before + bit_flip_delta(before, parameter.num_bits - 1, parameter.num_bits)

        def apply(parameter=parameter, position=position, after=after):
            parameter.int_repr.flat[position] = after
            parameter.sync_from_int()

        def revert(parameter=parameter, position=position, before=before):
            parameter.int_repr.flat[position] = before
            parameter.sync_from_int()

        trials.append(TrialFlip(stage=evaluator.stage_of(parameter), apply=apply, revert=revert))
    return trials


class TestPeekMany:
    """Golden contract: peek_many == B sequential peeks, bit for bit."""

    def test_matches_sequential_peeks_warm_cache(self, quantized_resnet):
        x = np.random.default_rng(0).normal(size=(4, 3, 8, 8))
        evaluator = SuffixEvaluator(quantized_resnet)
        clean = evaluator.forward("batch", x).copy()
        trials = trial_flips(quantized_resnet, evaluator, count=6)
        assert len({trial.stage for trial in trials}) > 1  # mixed stages
        sequential = []
        for trial in trials:
            trial.apply()
            sequential.append(evaluator.peek("batch", x, from_stage=trial.stage).copy())
            trial.revert()
        batched = evaluator.peek_many("batch", x, trials)
        for index, (expected, got) in enumerate(zip(sequential, batched)):
            assert np.array_equal(expected, got), index
        # The trials were reverted around their own stage runs only: the
        # cache must still answer with the clean output.
        assert np.array_equal(evaluator.forward("batch", x), clean)

    def test_matches_sequential_peeks_cold_cache(self, quantized_resnet):
        x = np.random.default_rng(3).normal(size=(3, 3, 8, 8))
        warm = SuffixEvaluator(quantized_resnet)
        warm.forward("k", x)
        trials = trial_flips(quantized_resnet, warm, count=4)
        sequential = []
        for trial in trials:
            trial.apply()
            sequential.append(warm.peek("k", x, from_stage=trial.stage).copy())
            trial.revert()
        cold = SuffixEvaluator(quantized_resnet)
        batched = cold.peek_many("k", x, trials)
        for expected, got in zip(sequential, batched):
            assert np.array_equal(expected, got)

    def test_same_stage_group_is_batched_downstream(self, quantized_resnet):
        """Several trials in one stage share every downstream suffix stage."""
        x = np.random.default_rng(1).normal(size=(2, 3, 8, 8))
        evaluator = SuffixEvaluator(quantized_resnet)
        evaluator.forward("batch", x)
        base = trial_flips(quantized_resnet, evaluator, count=1)[0]
        trials = [base, TrialFlip(stage=base.stage, apply=base.apply, revert=base.revert)]
        batched = evaluator.peek_many("batch", x, trials)
        base.apply()
        expected = evaluator.peek("batch", x, from_stage=base.stage)
        base.revert()
        assert np.array_equal(batched[0], expected)
        assert np.array_equal(batched[1], expected)

    def test_large_stacks_stay_bit_identical(self, quantized_resnet):
        """Stacks beyond BLAS kernel thresholds must not move any row.

        BLAS matmul kernels re-block once the leading dimension grows past
        a few hundred rows, which would make a stacked suffix round
        differently from the solo forward; the row-stable 2-D linear path
        exists exactly to prevent that.  25 stacked trials x 16 rows puts
        the suffix well past the observed OpenBLAS threshold.
        """
        x = np.random.default_rng(5).normal(size=(16, 3, 8, 8))
        evaluator = SuffixEvaluator(quantized_resnet)
        evaluator.forward("batch", x)
        base = trial_flips(quantized_resnet, evaluator, count=1)[0]
        base.apply()
        expected = evaluator.peek("batch", x, from_stage=base.stage).copy()
        base.revert()
        for got in evaluator.peek_many("batch", x, [base] * 25):
            assert np.array_equal(got, expected)

    def test_empty_and_invalid_trials(self, quantized_resnet):
        evaluator = SuffixEvaluator(quantized_resnet)
        assert evaluator.peek_many("k", np.zeros((1, 3, 8, 8)), []) == []
        bad = TrialFlip(stage=evaluator.num_stages, apply=lambda: None, revert=lambda: None)
        with pytest.raises(IndexError):
            evaluator.peek_many("k", np.zeros((1, 3, 8, 8)), [bad])


class TestForwardMany:
    """forward_many == per-batch forward, including stored boundaries."""

    def test_matches_individual_forwards(self, quantized_resnet):
        rng = np.random.default_rng(0)
        batches = [rng.normal(size=(size, 3, 8, 8)) for size in (4, 4, 2)]
        stacked = SuffixEvaluator(quantized_resnet)
        outputs = stacked.forward_many([(index, x) for index, x in enumerate(batches)])
        single = SuffixEvaluator(quantized_resnet)
        for index, (x, output) in enumerate(zip(batches, outputs)):
            assert np.array_equal(output, single.forward(("solo", index), x))

    def test_resumes_each_batch_from_its_own_depth(self, quantized_resnet):
        rng = np.random.default_rng(7)
        batches = [rng.normal(size=(3, 3, 8, 8)) for _ in range(3)]
        evaluator = SuffixEvaluator(quantized_resnet)
        items = [(index, x) for index, x in enumerate(batches)]
        evaluator.forward_many(items)
        head = quantized_parameters(quantized_resnet)["head.weight"]
        undo = msb_flip(head)
        evaluator.invalidate_from(evaluator.stage_of(head))
        # Truncate two entries further so the batches resume from three
        # different depths and join the stacked pass at different stages.
        del evaluator._caches[1][2:]
        del evaluator._caches[2][4:]
        try:
            outputs = evaluator.forward_many(items)
            for x, output in zip(batches, outputs):
                assert np.array_equal(output, quantized_resnet(Tensor(x)).data)
        finally:
            undo()

    def test_duplicate_keys_rejected(self, quantized_resnet):
        x = np.random.default_rng(4).normal(size=(2, 3, 8, 8))
        evaluator = SuffixEvaluator(quantized_resnet)
        with pytest.raises(ValueError, match="distinct batch keys"):
            evaluator.forward_many([("a", x), ("a", x)])

    def test_cached_batches_cost_nothing(self, quantized_resnet):
        x = np.random.default_rng(2).normal(size=(2, 3, 8, 8))
        evaluator = SuffixEvaluator(quantized_resnet)
        first = evaluator.forward_many([("a", x)])
        again = evaluator.forward_many([("a", x)])
        assert np.array_equal(first[0], again[0])
        assert again[0] is evaluator._caches["a"][-1]
