"""Tests for Module registration, traversal and state I/O."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.module import Module
from repro.nn.parameter import Parameter


class SmallNet(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8)
        self.act = ReLU()
        self.fc2 = Linear(8, 2)
        self.register_buffer("counter", np.zeros(1))

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x)))


class TestRegistration:
    def test_named_parameters_qualified_names(self):
        net = SmallNet()
        names = [name for name, _ in net.named_parameters()]
        assert "fc1.weight" in names and "fc2.bias" in names
        assert len(names) == 4

    def test_named_modules_includes_self_and_children(self):
        net = SmallNet()
        names = [name for name, _ in net.named_modules()]
        assert "" in names and "fc1" in names and "act" in names

    def test_num_parameters(self):
        net = SmallNet()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_add_module_explicit(self):
        net = SmallNet()
        net.add_module("extra", Linear(2, 2))
        assert "extra" in dict(net.named_modules())


class TestModesAndGrads:
    def test_train_eval_propagation(self):
        net = Sequential(SmallNet(), SmallNet())
        net.eval()
        assert all(not module.training for _, module in net.named_modules())
        net.train()
        assert all(module.training for _, module in net.named_modules())

    def test_zero_grad(self):
        net = SmallNet()
        out = net(Tensor(np.random.default_rng(0).normal(size=(3, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor([1.0]))


class TestStateDict:
    def test_roundtrip(self):
        net = SmallNet()
        state = net.state_dict()
        # Mutate then restore.
        for parameter in net.parameters():
            parameter.data += 1.0
        net.load_state_dict(state)
        for name, parameter in net.named_parameters():
            assert np.allclose(parameter.data, state[name])

    def test_state_dict_contains_buffers(self):
        net = SmallNet()
        assert "counter" in net.state_dict()

    def test_missing_key_rejected(self):
        net = SmallNet()
        state = net.state_dict()
        del state["fc1.weight"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        net = SmallNet()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_state_dict_values_are_copies(self):
        net = SmallNet()
        state = net.state_dict()
        state["fc1.weight"][...] = 99.0
        assert not np.allclose(dict(net.named_parameters())["fc1.weight"].data, 99.0)


class TestParameter:
    def test_requires_grad_by_default(self):
        parameter = Parameter(np.zeros((2, 2)))
        assert parameter.requires_grad

    def test_quantization_lifecycle(self):
        parameter = Parameter(np.array([[0.5, -1.0]]))
        parameter.attach_quantization(np.array([[64, -127]]), scale=1 / 127, num_bits=8)
        assert parameter.is_quantized
        assert np.allclose(parameter.data, np.array([[64, -127]]) / 127)
        parameter.detach_quantization()
        assert not parameter.is_quantized

    def test_attach_quantization_validation(self):
        parameter = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            parameter.attach_quantization(np.zeros((3, 3)), scale=1.0, num_bits=8)
        with pytest.raises(ValueError):
            parameter.attach_quantization(np.zeros((2, 2)), scale=0.0, num_bits=8)

    def test_grad_array_defaults_to_zeros(self):
        parameter = Parameter(np.ones((3,)))
        assert np.allclose(parameter.grad_array(), 0.0)
