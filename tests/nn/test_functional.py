"""Tests for convolution / pooling operations, with gradient checks."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.autograd import Tensor
from tests.nn.test_autograd import check_gradient

rng = np.random.default_rng(1)


class TestConv2d:
    def test_output_shape(self):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(5, 3, 3, 3)))
        out = F.conv2d(x, w, stride=1, padding=1)
        assert out.shape == (2, 5, 8, 8)
        out = F.conv2d(x, w, stride=2, padding=1)
        assert out.shape == (2, 5, 4, 4)

    def test_matches_direct_computation(self):
        # 1x1 input channel, 1 filter: convolution reduces to a dot product.
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        w = np.ones((1, 1, 2, 2))
        out = F.conv2d(Tensor(x), Tensor(w), stride=2)
        expected = np.array([[0 + 1 + 4 + 5, 2 + 3 + 6 + 7], [8 + 9 + 12 + 13, 10 + 11 + 14 + 15]])
        assert np.allclose(out.data[0, 0], expected)

    def test_bias_added_per_channel(self):
        x = Tensor(np.zeros((1, 1, 4, 4)))
        w = Tensor(np.zeros((2, 1, 3, 3)))
        b = Tensor(np.array([1.5, -2.0]))
        out = F.conv2d(x, w, b, padding=1)
        assert np.allclose(out.data[0, 0], 1.5)
        assert np.allclose(out.data[0, 1], -2.0)

    def test_channel_mismatch_rejected(self):
        x = Tensor(np.zeros((1, 3, 4, 4)))
        w = Tensor(np.zeros((2, 4, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_empty_output_rejected(self):
        x = Tensor(np.zeros((1, 1, 2, 2)))
        w = Tensor(np.zeros((1, 1, 5, 5)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_gradients_wrt_input_weight_bias(self):
        x = rng.normal(size=(2, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=(3,))
        check_gradient(lambda t: F.conv2d(t, Tensor(w), Tensor(b), stride=1, padding=1), x, rtol=1e-3)
        check_gradient(lambda t: F.conv2d(Tensor(x), t, Tensor(b), stride=2, padding=1), w, rtol=1e-3)
        check_gradient(lambda t: F.conv2d(Tensor(x), Tensor(w), t, stride=1, padding=0), b, rtol=1e-3)


class TestConv1d:
    def test_output_shape_and_padding(self):
        x = Tensor(rng.normal(size=(2, 3, 16)))
        w = Tensor(rng.normal(size=(4, 3, 5)))
        assert F.conv1d(x, w, padding=2).shape == (2, 4, 16)
        assert F.conv1d(x, w, stride=2, padding=2).shape == (2, 4, 8)

    def test_gradients(self):
        x = rng.normal(size=(2, 2, 10))
        w = rng.normal(size=(3, 2, 3))
        check_gradient(lambda t: F.conv1d(t, Tensor(w), padding=1), x, rtol=1e-3)
        check_gradient(lambda t: F.conv1d(Tensor(x), t, stride=2, padding=1), w, rtol=1e-3)


class TestPooling:
    def test_max_pool2d_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), kernel=2)
        assert np.allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool2d_gradient(self):
        x = rng.normal(size=(2, 3, 4, 4))
        check_gradient(lambda t: F.max_pool2d(t, 2), x, rtol=1e-3)

    def test_max_pool2d_requires_divisible_dims(self):
        with pytest.raises(ValueError):
            F.max_pool2d(Tensor(np.zeros((1, 1, 5, 4))), 2)

    def test_max_pool1d_values_and_gradient(self):
        x = np.array([[[1.0, 3.0, 2.0, 0.0]]])
        out = F.max_pool1d(Tensor(x), kernel=2)
        assert np.allclose(out.data, [[[3.0, 2.0]]])
        check_gradient(lambda t: F.max_pool1d(t, 2), rng.normal(size=(2, 2, 8)), rtol=1e-3)

    def test_avg_pool2d(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), kernel=2)
        assert np.allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])
        check_gradient(lambda t: F.avg_pool2d(t, 2), rng.normal(size=(1, 2, 4, 4)))

    def test_global_pools(self):
        x = rng.normal(size=(2, 3, 4, 4))
        assert F.global_avg_pool2d(Tensor(x)).shape == (2, 3)
        waveform = rng.normal(size=(2, 3, 10))
        assert F.global_avg_pool1d(Tensor(waveform)).shape == (2, 3)


class TestLinearAndMisc:
    def test_linear_2d_and_3d(self):
        x2 = rng.normal(size=(4, 6))
        x3 = rng.normal(size=(2, 5, 6))
        w = rng.normal(size=(3, 6))
        b = rng.normal(size=(3,))
        assert F.linear(Tensor(x2), Tensor(w), Tensor(b)).shape == (4, 3)
        assert F.linear(Tensor(x3), Tensor(w), Tensor(b)).shape == (2, 5, 3)
        check_gradient(lambda t: F.linear(Tensor(x3), t, Tensor(b)), w, rtol=1e-3)

    def test_flatten(self):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        assert F.flatten(x).shape == (2, 12)

    def test_one_hot(self):
        encoded = F.one_hot(np.array([0, 2, 1]), 3)
        assert np.allclose(encoded, np.eye(3)[[0, 2, 1]])
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            F.one_hot(np.array([[0, 1]]), 3)


class TestIm2Col:
    def test_roundtrip_adjoint_property(self):
        # <im2col(x), y> == <x, col2im(y)> (adjoint pair).
        x = rng.normal(size=(1, 2, 6, 6))
        cols = F.im2col(x, (3, 3), stride=1, padding=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        x_back = F.col2im(y, x.shape, (3, 3), stride=1, padding=1)
        rhs = float((x * x_back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)
