"""Tests for 8-bit post-training quantization."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.layers import Conv2d, Linear, ReLU, Sequential
from repro.nn.quantization import (
    DEFAULT_NUM_BITS,
    dequantize_array,
    quantize_array,
    quantize_model,
    quantized_parameters,
    total_quantized_bits,
)

rng = np.random.default_rng(4)


class TestQuantizeArray:
    def test_range_and_scale(self):
        weights = rng.normal(size=(64,))
        ints, scale = quantize_array(weights, 8)
        assert ints.min() >= -128 and ints.max() <= 127
        assert scale == pytest.approx(np.abs(weights).max() / 127)

    def test_reconstruction_error_bounded_by_half_scale(self):
        weights = rng.normal(size=(256,))
        ints, scale = quantize_array(weights, 8)
        reconstructed = dequantize_array(ints, scale)
        assert np.max(np.abs(reconstructed - weights)) <= scale / 2 + 1e-12

    def test_all_zero_tensor(self):
        ints, scale = quantize_array(np.zeros(10), 8)
        assert scale == 1.0 and np.all(ints == 0)

    def test_extreme_value_maps_to_127(self):
        weights = np.array([-2.0, 0.0, 2.0])
        ints, _ = quantize_array(weights, 8)
        assert ints.tolist() == [-127, 0, 127]


class TestQuantizeModel:
    def _model(self):
        return Sequential(Conv2d(3, 4, 3, padding=1, rng=rng), ReLU(), Linear(4, 2, rng=rng))

    def test_only_conv_and_linear_weights_quantized(self):
        model = self._model()
        infos = quantize_model(model)
        names = {info.name for info in infos}
        assert names == {"0.weight", "2.weight"}
        quantized = quantized_parameters(model)
        assert set(quantized) == names
        # Biases stay unquantized.
        assert not model[0].bias.is_quantized

    def test_model_without_quantizable_layers_rejected(self):
        with pytest.raises(ValueError):
            quantize_model(Sequential(ReLU()))

    def test_forward_still_works_and_outputs_similar(self):
        model = self._model()
        x = Tensor(rng.normal(size=(2, 3, 4, 4)))
        before = model(x).data.copy()
        quantize_model(model)
        after = model(x).data
        assert np.allclose(before, after, atol=0.2)

    def test_total_quantized_bits(self):
        model = self._model()
        quantize_model(model)
        expected = (4 * 3 * 3 * 3 + 2 * 4) * DEFAULT_NUM_BITS
        assert total_quantized_bits(model) == expected

    def test_infos_follow_traversal_order_and_metadata(self):
        model = self._model()
        infos = quantize_model(model)
        assert infos[0].name == "0.weight"
        assert infos[0].num_bits_total == infos[0].num_weights * 8
        assert infos[0].shape == (4, 3, 3, 3)

    def test_flipping_int_repr_changes_forward(self):
        model = self._model()
        quantize_model(model)
        x = Tensor(rng.normal(size=(1, 3, 4, 4)))
        before = model(x).data.copy()
        parameter = quantized_parameters(model)["0.weight"]
        parameter.int_repr.flat[0] = -128
        parameter.sync_from_int()
        after = model(x).data
        assert not np.allclose(before, after)
