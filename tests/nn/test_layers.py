"""Tests for the layer library (shapes, modes, parameter registration)."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.layers import (
    GELU,
    BatchNorm1d,
    BatchNorm2d,
    ClassTokenConcat,
    Conv1d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    LayerNorm,
    Linear,
    MaxPool2d,
    MultiHeadSelfAttention,
    PatchEmbedding,
    PositionalEmbedding,
    ReLU,
    SelectiveSSMBlock,
    Sequential,
    SiLU,
    TransformerBlock,
)

rng = np.random.default_rng(2)


class TestLinearAndConvLayers:
    def test_linear_shapes_and_params(self):
        layer = Linear(6, 3)
        assert layer(Tensor(rng.normal(size=(4, 6)))).shape == (4, 3)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_linear_without_bias(self):
        layer = Linear(6, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_conv2d_shape(self):
        layer = Conv2d(3, 8, 3, stride=2, padding=1)
        assert layer(Tensor(rng.normal(size=(2, 3, 8, 8)))).shape == (2, 8, 4, 4)

    def test_conv1d_shape(self):
        layer = Conv1d(2, 4, 5, stride=2, padding=2)
        assert layer(Tensor(rng.normal(size=(2, 2, 16)))).shape == (2, 4, 8)

    def test_gradients_reach_parameters(self):
        layer = Conv2d(2, 4, 3, padding=1)
        out = layer(Tensor(rng.normal(size=(1, 2, 4, 4))))
        out.sum().backward()
        assert layer.weight.grad is not None and np.any(layer.weight.grad != 0)
        assert layer.bias.grad is not None


class TestNormLayers:
    def test_batchnorm2d_train_normalises_batch(self):
        layer = BatchNorm2d(3)
        x = Tensor(rng.normal(loc=5.0, scale=2.0, size=(8, 3, 4, 4)))
        out = layer(x)
        assert abs(out.data.mean()) < 1e-6
        assert out.data.std() == pytest.approx(1.0, rel=1e-2)

    def test_batchnorm_running_stats_updated_and_used_in_eval(self):
        layer = BatchNorm2d(2, momentum=0.5)
        x = Tensor(rng.normal(loc=3.0, size=(16, 2, 4, 4)))
        layer.train()
        layer(x)
        assert np.any(layer.running_mean != 0)
        layer.eval()
        out_eval = layer(Tensor(np.zeros((2, 2, 4, 4))))
        # In eval mode the output depends on running stats, not on the batch.
        assert not np.allclose(out_eval.data, 0.0)

    def test_batchnorm1d_shape(self):
        layer = BatchNorm1d(4)
        assert layer(Tensor(rng.normal(size=(3, 4, 10)))).shape == (3, 4, 10)

    def test_layernorm_normalises_last_dim(self):
        layer = LayerNorm(8)
        out = layer(Tensor(rng.normal(loc=2.0, size=(3, 5, 8))))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)

    def test_invalid_feature_count(self):
        with pytest.raises(ValueError):
            BatchNorm2d(0)
        with pytest.raises(ValueError):
            LayerNorm(0)


class TestActivationsAndPooling:
    def test_relu_gelu_silu_shapes(self):
        x = Tensor(rng.normal(size=(4, 5)))
        for layer in (ReLU(), GELU(), SiLU()):
            assert layer(x).shape == (4, 5)

    def test_relu_clamps_negative(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        assert np.allclose(out.data, [0.0, 2.0])

    def test_pool_and_flatten(self):
        x = Tensor(rng.normal(size=(2, 3, 4, 4)))
        assert MaxPool2d(2)(x).shape == (2, 3, 2, 2)
        assert GlobalAvgPool2d()(x).shape == (2, 3)
        assert Flatten()(x).shape == (2, 48)


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, seed=0)
        layer.eval()
        x = Tensor(rng.normal(size=(10, 10)))
        assert np.allclose(layer(x).data, x.data)

    def test_train_mode_zeroes_some_activations(self):
        layer = Dropout(0.5, seed=0)
        layer.train()
        x = Tensor(np.ones((20, 20)))
        out = layer(x)
        assert (out.data == 0).any()
        # Inverted dropout preserves the expectation roughly.
        assert out.data.mean() == pytest.approx(1.0, abs=0.2)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestSequential:
    def test_forward_and_iteration(self):
        model = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        assert model(Tensor(rng.normal(size=(3, 4)))).shape == (3, 2)
        assert len(model) == 3
        assert isinstance(model[1], ReLU)

    def test_append(self):
        model = Sequential(Linear(4, 4))
        model.append(ReLU())
        assert len(model) == 2
        assert len(model.parameters()) == 2  # only the linear layer has params

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Linear(4, 4))
        model.eval()
        assert not model[0].training


class TestTransformerLayers:
    def test_attention_shape_preserved(self):
        attention = MultiHeadSelfAttention(embed_dim=16, num_heads=4)
        x = Tensor(rng.normal(size=(2, 5, 16)))
        assert attention(x).shape == (2, 5, 16)

    def test_attention_head_divisibility(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(embed_dim=10, num_heads=3)

    def test_transformer_block_shape_and_gradients(self):
        block = TransformerBlock(embed_dim=16, num_heads=2, mlp_ratio=2.0)
        x = Tensor(rng.normal(size=(2, 5, 16)), requires_grad=True)
        out = block(x)
        assert out.shape == (2, 5, 16)
        out.sum().backward()
        assert x.grad is not None
        assert block.attention.qkv.weight.grad is not None

    def test_patch_embedding_token_count(self):
        embed = PatchEmbedding(image_size=16, patch_size=4, in_channels=3, embed_dim=8)
        tokens = embed(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert tokens.shape == (2, 16, 8)

    def test_patch_embedding_divisibility(self):
        with pytest.raises(ValueError):
            PatchEmbedding(image_size=10, patch_size=4, in_channels=3, embed_dim=8)

    def test_class_token_prepended(self):
        concat = ClassTokenConcat(embed_dim=8)
        tokens = concat(Tensor(rng.normal(size=(3, 4, 8))))
        assert tokens.shape == (3, 5, 8)
        # The class token is shared across the batch.
        assert np.allclose(tokens.data[0, 0], tokens.data[1, 0])

    def test_positional_embedding_shape_check(self):
        positional = PositionalEmbedding(num_tokens=5, embed_dim=8)
        assert positional(Tensor(rng.normal(size=(2, 5, 8)))).shape == (2, 5, 8)
        with pytest.raises(ValueError):
            positional(Tensor(rng.normal(size=(2, 7, 8))))


class TestSelectiveSSM:
    def test_shape_preserved_and_gradients_flow(self):
        block = SelectiveSSMBlock(embed_dim=12, expansion=2.0)
        x = Tensor(rng.normal(size=(2, 6, 12)), requires_grad=True)
        out = block(x)
        assert out.shape == (2, 6, 12)
        out.sum().backward()
        assert x.grad is not None
        assert block.in_proj.weight.grad is not None
        assert block.log_decay.grad is not None

    def test_sequence_mixing_is_causal_in_scan(self):
        # Changing a later token must not change earlier outputs (the scan
        # runs left to right).
        block = SelectiveSSMBlock(embed_dim=8, expansion=1.0)
        base = rng.normal(size=(1, 5, 8))
        modified = base.copy()
        modified[0, 4] += 10.0
        out_base = block(Tensor(base)).data
        out_modified = block(Tensor(modified)).data
        assert np.allclose(out_base[0, :4], out_modified[0, :4])
        assert not np.allclose(out_base[0, 4], out_modified[0, 4])
