"""Tests for the loss functions and optimizers."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.layers import Linear
from repro.nn.loss import CrossEntropyLoss, accuracy, cross_entropy
from repro.nn.optim import SGD, Adam
from repro.nn.parameter import Parameter

rng = np.random.default_rng(3)


class TestCrossEntropy:
    def test_uniform_logits_give_log_k(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = cross_entropy(logits, np.zeros(4, dtype=np.int64))
        assert loss.item() == pytest.approx(np.log(10))

    def test_correct_confident_prediction_gives_small_loss(self):
        logits = np.full((2, 5), -10.0)
        logits[np.arange(2), [1, 3]] = 10.0
        loss = cross_entropy(Tensor(logits), np.array([1, 3]))
        assert loss.item() < 1e-6

    def test_gradient_matches_softmax_minus_onehot(self):
        logits_value = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 1])
        logits = Tensor(logits_value, requires_grad=True)
        cross_entropy(logits, labels).backward()
        softmax = np.exp(logits_value - logits_value.max(axis=1, keepdims=True))
        softmax /= softmax.sum(axis=1, keepdims=True)
        onehot = np.eye(4)[labels]
        expected = (softmax - onehot) / 3
        assert np.allclose(logits.grad, expected, atol=1e-8)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))

    def test_callable_wrapper(self):
        loss = CrossEntropyLoss()(Tensor(np.zeros((2, 2))), np.array([0, 1]))
        assert loss.item() == pytest.approx(np.log(2))


class TestAccuracy:
    def test_perfect_and_zero(self):
        logits = np.eye(3)
        assert accuracy(logits, np.array([0, 1, 2])) == 100.0
        assert accuracy(logits, np.array([1, 2, 0])) == 0.0

    def test_empty(self):
        assert accuracy(np.zeros((0, 3)), np.zeros(0)) == 0.0


class TestOptimizers:
    def test_sgd_plain_step(self):
        parameter = Parameter(np.array([1.0, 2.0]))
        parameter.grad = np.array([0.5, -0.5])
        SGD([parameter], lr=0.1).step()
        assert np.allclose(parameter.data, [0.95, 2.05])

    def test_sgd_momentum_accumulates(self):
        parameter = Parameter(np.array([0.0]))
        optimizer = SGD([parameter], lr=1.0, momentum=0.9)
        parameter.grad = np.array([1.0])
        optimizer.step()
        first = parameter.data.copy()
        parameter.grad = np.array([1.0])
        optimizer.step()
        # Second step is larger than the first because of momentum.
        assert abs(parameter.data[0] - first[0]) > 1.0

    def test_weight_decay_pulls_towards_zero(self):
        parameter = Parameter(np.array([10.0]))
        parameter.grad = np.array([0.0])
        SGD([parameter], lr=0.1, weight_decay=0.5).step()
        assert parameter.data[0] < 10.0

    def test_adam_moves_against_gradient(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = Adam([parameter], lr=0.1)
        parameter.grad = np.array([1.0])
        optimizer.step()
        assert parameter.data[0] < 1.0

    def test_skip_parameters_without_grad(self):
        parameter = Parameter(np.array([1.0]))
        Adam([parameter], lr=0.1).step()
        assert parameter.data[0] == 1.0

    def test_zero_grad(self):
        parameter = Parameter(np.array([1.0]))
        parameter.grad = np.array([1.0])
        optimizer = SGD([parameter], lr=0.1)
        optimizer.zero_grad()
        assert parameter.grad is None

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_optimizers_reduce_loss_on_regression_task(self):
        from repro.nn.loss import cross_entropy as ce

        layer = Linear(5, 3, rng=rng)
        x = rng.normal(size=(32, 5))
        y = rng.integers(0, 3, size=32)
        optimizer = Adam(layer.parameters(), lr=0.05)
        losses = []
        for _ in range(30):
            optimizer.zero_grad()
            loss = ce(layer(Tensor(x)), y)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.7
