"""Tests for the reverse-mode autodiff engine, including numerical checks."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor, as_tensor, concatenate, is_grad_enabled, no_grad, stack, where


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``fn`` w.r.t. ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn(x)
        flat[i] = original - eps
        down = fn(x)
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(make_output, x_value, rtol=1e-4, atol=1e-6):
    """Compare autograd gradients against central differences."""
    x_value = np.asarray(x_value, dtype=np.float64)

    def scalar_fn(value):
        tensor = Tensor(value.copy(), requires_grad=True)
        return float(make_output(tensor).sum().item())

    tensor = Tensor(x_value.copy(), requires_grad=True)
    output = make_output(tensor).sum()
    output.backward()
    numeric = numerical_gradient(scalar_fn, x_value.copy())
    assert np.allclose(tensor.grad, numeric, rtol=rtol, atol=atol), (
        f"analytic {tensor.grad} vs numeric {numeric}"
    )


class TestBasics:
    def test_item_and_numpy(self):
        t = Tensor(3.5)
        assert t.item() == 3.5
        assert isinstance(t.numpy(), np.ndarray)

    def test_detach_cuts_graph(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_non_scalar_needs_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_gradient_accumulation_over_two_backwards(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        (t * 3).sum().backward()
        (t * 3).sum().backward()
        assert np.allclose(t.grad, [6.0, 6.0])

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None


rng = np.random.default_rng(0)


class TestElementwiseGradients:
    def test_add_broadcast(self):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4,))
        check_gradient(lambda t: t + Tensor(b), a)
        check_gradient(lambda t: Tensor(a) + t, b)

    def test_mul_broadcast(self):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(3, 1))
        check_gradient(lambda t: t * Tensor(b), a)
        check_gradient(lambda t: Tensor(a) * t, b)

    def test_sub_neg_div(self):
        a = rng.normal(size=(5,)) + 3.0
        b = rng.normal(size=(5,)) + 3.0
        check_gradient(lambda t: t - Tensor(b), a)
        check_gradient(lambda t: -t, a)
        check_gradient(lambda t: t / Tensor(b), a)
        check_gradient(lambda t: Tensor(a) / t, b)

    def test_pow(self):
        a = np.abs(rng.normal(size=(4,))) + 0.5
        check_gradient(lambda t: t ** 3, a)
        check_gradient(lambda t: t ** 0.5, a, rtol=1e-3)

    def test_scalar_operand(self):
        a = rng.normal(size=(3,))
        check_gradient(lambda t: 2.0 * t + 1.0, a)
        check_gradient(lambda t: 1.0 - t, a)
        check_gradient(lambda t: 2.0 / (t + 5.0), a)

    @pytest.mark.parametrize("op", ["exp", "log", "sqrt", "relu", "sigmoid", "tanh",
                                    "gelu", "silu", "softplus"])
    def test_unary_ops(self, op):
        a = np.abs(rng.normal(size=(6,))) + 0.5  # positive for log/sqrt
        check_gradient(lambda t: getattr(t, op)(), a, rtol=1e-3)


class TestMatmulAndReductions:
    def test_matmul_2d(self):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        check_gradient(lambda t: t.matmul(Tensor(b)), a)
        check_gradient(lambda t: Tensor(a).matmul(t), b)

    def test_matmul_batched(self):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(2, 4, 5))
        check_gradient(lambda t: t.matmul(Tensor(b)), a, rtol=1e-3)
        check_gradient(lambda t: Tensor(a).matmul(t), b, rtol=1e-3)

    def test_matmul_broadcast_batch(self):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(4, 5))
        check_gradient(lambda t: Tensor(a).matmul(t), b, rtol=1e-3)

    def test_sum_axes(self):
        a = rng.normal(size=(3, 4, 2))
        check_gradient(lambda t: t.sum(), a)
        check_gradient(lambda t: t.sum(axis=1), a)
        check_gradient(lambda t: t.sum(axis=(0, 2), keepdims=True), a)

    def test_mean_and_var(self):
        a = rng.normal(size=(4, 5))
        check_gradient(lambda t: t.mean(axis=0), a)
        check_gradient(lambda t: t.var(axis=1), a, rtol=1e-3)

    def test_max(self):
        a = rng.normal(size=(4, 5))
        check_gradient(lambda t: t.max(axis=1), a)

    def test_softmax_and_log_softmax(self):
        a = rng.normal(size=(3, 6))
        weights = Tensor(rng.normal(size=(3, 6)))
        check_gradient(lambda t: t.softmax(axis=-1) * weights, a, rtol=1e-3)
        check_gradient(lambda t: t.log_softmax(axis=-1) * weights, a, rtol=1e-3)

    def test_softmax_rows_sum_to_one(self):
        a = Tensor(rng.normal(size=(5, 7)))
        out = a.softmax(axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)


class TestShapeOps:
    def test_reshape_transpose(self):
        a = rng.normal(size=(2, 3, 4))
        check_gradient(lambda t: t.reshape(6, 4), a)
        check_gradient(lambda t: t.transpose(2, 0, 1), a)
        check_gradient(lambda t: t.transpose(), a)

    def test_getitem(self):
        a = rng.normal(size=(4, 5))
        check_gradient(lambda t: t[1:3, :], a)
        check_gradient(lambda t: t[:, 0], a)

    def test_pad(self):
        a = rng.normal(size=(2, 3))
        check_gradient(lambda t: t.pad(((1, 1), (0, 2))), a)

    def test_concatenate_and_stack(self):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(2, 3))
        check_gradient(lambda t: concatenate([t, Tensor(b)], axis=0), a)
        check_gradient(lambda t: concatenate([Tensor(a), t], axis=1), b)
        check_gradient(lambda t: stack([t, Tensor(b)], axis=1), a)

    def test_where(self):
        a = rng.normal(size=(4,))
        b = rng.normal(size=(4,))
        condition = np.array([True, False, True, False])
        check_gradient(lambda t: where(condition, t, Tensor(b)), a)
        check_gradient(lambda t: where(condition, Tensor(a), t), b)


class TestGraphComposition:
    def test_diamond_graph_accumulates(self):
        # y = x*x + x*x must give dy/dx = 4x.
        x = Tensor([3.0], requires_grad=True)
        y = x * x + x * x
        y.backward()
        assert np.allclose(x.grad, [12.0])

    def test_chained_mlp_like_expression(self):
        x = rng.normal(size=(5, 3))
        w1 = rng.normal(size=(3, 4))
        w2 = rng.normal(size=(4, 2))
        readout = Tensor(rng.normal(size=(5, 2)))

        def network(t):
            hidden = t.matmul(Tensor(w1)).relu()
            return hidden.matmul(Tensor(w2)).softmax(axis=-1) * readout

        check_gradient(network, x, rtol=1e-3)


class TestNoGrad:
    def test_default_mode_records(self):
        assert is_grad_enabled()

    def test_no_graph_inside_context(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = (x * 2.0).relu().sum()
        assert not out.requires_grad
        assert out._parents == ()
        assert out._backward is None

    def test_values_identical_to_recording_path(self):
        data = np.linspace(-2.0, 2.0, 12).reshape(3, 4)
        x = Tensor(data, requires_grad=True)
        recorded = x.silu().log_softmax(axis=-1)
        with no_grad():
            plain = x.silu().log_softmax(axis=-1)
        assert np.array_equal(recorded.data, plain.data)

    def test_mode_restored_after_exit_and_exception(self):
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_contexts_nest(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_backward_outside_context_unaffected(self):
        x = Tensor(np.arange(3.0), requires_grad=True)
        with no_grad():
            (x * 3.0).sum()  # constant detour must not poison the graph
        loss = (x * 3.0).sum()
        loss.backward()
        assert np.array_equal(x.grad, np.full(3, 3.0))
