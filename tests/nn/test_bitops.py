"""Tests for two's-complement bit manipulation."""

import numpy as np
import pytest

from repro.nn.bitops import (
    bit_flip_delta,
    bit_flip_deltas_vector,
    bits_to_int,
    flip_bit,
    from_twos_complement,
    get_bit,
    hamming_distance,
    int_range,
    int_to_bits,
    to_twos_complement,
)


class TestTwosComplement:
    def test_int_range_8bit(self):
        assert int_range(8) == (-128, 127)

    def test_encode_decode_roundtrip(self):
        values = np.arange(-128, 128)
        encoded = to_twos_complement(values, 8)
        assert np.array_equal(from_twos_complement(encoded, 8), values)

    def test_known_encodings(self):
        assert to_twos_complement(np.array([-1]), 8)[0] == 0xFF
        assert to_twos_complement(np.array([-128]), 8)[0] == 0x80
        assert to_twos_complement(np.array([127]), 8)[0] == 0x7F

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            to_twos_complement(np.array([128]), 8)
        with pytest.raises(ValueError):
            to_twos_complement(np.array([-129]), 8)

    def test_invalid_bit_width(self):
        with pytest.raises(ValueError):
            int_range(1)
        with pytest.raises(ValueError):
            int_range(64)


class TestBitExpansion:
    def test_int_to_bits_lsb_first(self):
        bits = int_to_bits(np.array([5]), 8)[0]
        assert bits.tolist() == [1, 0, 1, 0, 0, 0, 0, 0]

    def test_sign_bit_of_negative(self):
        bits = int_to_bits(np.array([-1]), 8)[0]
        assert bits.tolist() == [1] * 8

    def test_bits_to_int_roundtrip(self):
        values = np.arange(-128, 128)
        assert np.array_equal(bits_to_int(int_to_bits(values, 8), 8), values)

    def test_bits_to_int_shape_check(self):
        with pytest.raises(ValueError):
            bits_to_int(np.zeros((3, 7)), 8)

    def test_get_bit(self):
        assert get_bit(5, 0, 8) == 1
        assert get_bit(5, 1, 8) == 0
        assert get_bit(-1, 7, 8) == 1
        with pytest.raises(IndexError):
            get_bit(5, 8, 8)


class TestBitFlips:
    def test_flip_magnitude_bit(self):
        assert flip_bit(0, 0, 8) == 1
        assert flip_bit(1, 0, 8) == 0
        assert flip_bit(0, 6, 8) == 64

    def test_flip_sign_bit(self):
        assert flip_bit(0, 7, 8) == -128
        assert flip_bit(-128, 7, 8) == 0
        assert flip_bit(127, 7, 8) == -1
        assert flip_bit(-1, 7, 8) == 127

    def test_flip_is_involution(self):
        for value in (-128, -5, 0, 17, 127):
            for bit in range(8):
                assert flip_bit(flip_bit(value, bit, 8), bit, 8) == value

    def test_bit_flip_delta_consistency(self):
        for value in (-100, -1, 0, 3, 100):
            for bit in range(8):
                assert bit_flip_delta(value, bit, 8) == flip_bit(value, bit, 8) - value

    def test_vectorised_deltas_match_scalar(self):
        values = np.arange(-128, 128)
        for bit in range(8):
            vector = bit_flip_deltas_vector(values, bit, 8)
            scalar = np.array([bit_flip_delta(int(v), bit, 8) for v in values])
            assert np.array_equal(vector, scalar)

    def test_sign_bit_delta_has_magnitude_128(self):
        deltas = bit_flip_deltas_vector(np.array([-5, 5]), 7, 8)
        assert np.array_equal(np.abs(deltas), [128, 128])


class TestHammingDistance:
    def test_identical_is_zero(self):
        values = np.array([1, -3, 100])
        assert hamming_distance(values, values, 8) == 0

    def test_single_bit_difference(self):
        assert hamming_distance(np.array([0]), np.array([1]), 8) == 1
        assert hamming_distance(np.array([0]), np.array([-128]), 8) == 1

    def test_counts_all_differing_bits(self):
        assert hamming_distance(np.array([0]), np.array([-1]), 8) == 8
