"""Kernel registry tests: dispatch, bit-identity, fallback, scratch, memo.

The compiled tier's whole contract is "same bits, less time" — these tests
pin the registry mechanics (closed kernel set, per-kernel fallback,
thread-local activation), byte-level agreement between every backend
kernel and its reference, the exactly-one-warning toolchain-absent
fallback, and the correctness guards of the scratch pool and the im2col
memo used by the stacked suffix cascade.
"""

import builtins
import warnings

import numpy as np
import pytest

from repro.nn import kernels
from repro.nn.kernels import reference

BACKEND = kernels.available()
needs_backend = pytest.mark.skipif(
    not BACKEND, reason="no compiled kernel backend on this machine"
)


@pytest.fixture
def fresh_registry(monkeypatch):
    """Reset registry state around a test that reconfigures backends."""
    kernels._reset_for_tests()
    yield monkeypatch
    monkeypatch.undo()
    kernels._reset_for_tests()


def rich_inputs(seed=0):
    """A batch with signed zeros, NaN and denormals mixed into the data."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((4, 3, 7, 6))
    x[0, 0, 0, 0] = -0.0
    x[1, 2, 3, 4] = np.nan
    x[2, 1, 0, 5] = 5e-324
    return x


class TestRegistry:
    def test_kernel_names_match_reference(self):
        assert set(kernels.KERNEL_NAMES) == set(reference.KERNELS)
        assert len(kernels.KERNEL_NAMES) == 8

    def test_get_kernel_returns_callable_for_every_name(self):
        for name in kernels.KERNEL_NAMES:
            assert callable(kernels.get_kernel(name))

    def test_get_kernel_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            kernels.get_kernel("batched_gemm")

    def test_backend_name_consistent_with_available(self):
        if kernels.available():
            assert kernels.backend_name() in kernels.BACKEND_ORDER
        else:
            assert kernels.backend_name() is None

    def test_warmup_idempotent_and_returns_validated_names(self):
        first = kernels.warmup()
        second = kernels.warmup()
        assert first == second
        assert set(first) <= set(kernels.KERNEL_NAMES)


class TestActivation:
    def test_inactive_by_default(self):
        assert not kernels.compiled_active()
        assert kernels.active("im2col") is None

    @needs_backend
    def test_use_compiled_activates_in_scope_only(self):
        with kernels.use("compiled") as enabled:
            assert enabled
            assert kernels.compiled_active()
            assert kernels.active("im2col") is not None
        assert not kernels.compiled_active()

    def test_use_vectorized_pins_reference_tier(self):
        with kernels.use("vectorized") as enabled:
            assert not enabled
            assert kernels.active("im2col") is None

    @needs_backend
    def test_nested_scopes_restore_outer_state(self):
        with kernels.use("compiled"):
            with kernels.use("vectorized"):
                assert not kernels.compiled_active()
            assert kernels.compiled_active()

    @needs_backend
    def test_default_engine_env_enables_process_wide(self, fresh_registry):
        fresh_registry.setenv("REPRO_DEFAULT_ENGINE", "compiled")
        assert kernels.compiled_active()
        with kernels.use("vectorized"):
            assert not kernels.compiled_active()


@needs_backend
class TestBitIdentity:
    """Every backend kernel must agree with reference to the last byte."""

    @staticmethod
    def assert_bytes_equal(got, want):
        got, want = np.asarray(got), np.asarray(want)
        assert got.dtype == want.dtype
        assert got.shape == want.shape
        assert np.ascontiguousarray(got).tobytes() == np.ascontiguousarray(want).tobytes()

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (3, 2), (2, 0)])
    def test_im2col(self, stride, padding):
        x = rich_inputs()
        self.assert_bytes_equal(
            kernels.get_kernel("im2col")(x, (3, 3), stride, padding),
            reference.im2col(x, (3, 3), stride, padding),
        )

    @pytest.mark.parametrize("size", [2, 4, 8, 16, 32])
    def test_im2col_specialized_square_planes(self, size):
        """The 3x3/s1/p1 fast paths cover these plane sizes explicitly."""
        rng = np.random.default_rng(size)
        x = rng.standard_normal((3, 5, size, size))
        self.assert_bytes_equal(
            kernels.get_kernel("im2col")(x, (3, 3), 1, 1),
            reference.im2col(x, (3, 3), 1, 1),
        )

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_col2im(self, stride, padding):
        shape = (4, 3, 7, 6)
        out_h, out_w = reference.conv2d_output_size(7, 6, (3, 3), stride, padding)
        rng = np.random.default_rng(1)
        cols = rng.standard_normal((4, 3 * 9, out_h * out_w))
        self.assert_bytes_equal(
            kernels.get_kernel("col2im")(cols, shape, (3, 3), stride, padding),
            reference.col2im(cols, shape, (3, 3), stride, padding),
        )

    @pytest.mark.parametrize("with_bias", [True, False])
    def test_conv2d_forward(self, with_bias):
        x = rich_inputs()
        rng = np.random.default_rng(2)
        weight_matrix = rng.standard_normal((5, 3 * 9))
        bias = rng.standard_normal(5) if with_bias else None
        got_out, got_cols = kernels.get_kernel("conv2d_forward")(
            x, weight_matrix, bias, (3, 3), 1, 1
        )
        want_out, want_cols = reference.conv2d_forward(
            x, weight_matrix, bias, (3, 3), 1, 1
        )
        self.assert_bytes_equal(got_out, want_out)
        self.assert_bytes_equal(got_cols, want_cols)

    def test_bn_fold(self):
        x = rich_inputs()
        rng = np.random.default_rng(3)
        scale, shift = rng.standard_normal(3), rng.standard_normal(3)
        self.assert_bytes_equal(
            kernels.get_kernel("bn_fold")(x, scale, shift),
            reference.bn_fold(x, scale, shift),
        )

    def test_bn_infer(self):
        x = rich_inputs()
        rng = np.random.default_rng(4)
        weight, bias = rng.standard_normal(3), rng.standard_normal(3)
        mean, var = rng.standard_normal(3), rng.random(3) + 0.1
        self.assert_bytes_equal(
            kernels.get_kernel("bn_infer")(x, weight, bias, mean, var, 1e-5),
            reference.bn_infer(x, weight, bias, mean, var, 1e-5),
        )

    def test_relu_preserves_signed_zero_and_nan(self):
        x = rich_inputs()
        got = kernels.get_kernel("relu")(x)
        want = reference.relu(x)
        self.assert_bytes_equal(got, want)
        # The mask-multiply contract, stated explicitly:
        assert np.signbit(got[0, 0, 0, 0])  # -0.0 -> -0.0 (negative maps to -0.0)
        assert np.isnan(got[1, 2, 3, 4])  # NaN propagates

    @pytest.mark.parametrize("num_bits", [2, 4, 8])
    def test_delta_table(self, num_bits):
        rng = np.random.default_rng(num_bits)
        low, high = -(1 << (num_bits - 1)), (1 << (num_bits - 1)) - 1
        values = rng.integers(low, high + 1, size=53).astype(np.int64)
        self.assert_bytes_equal(
            kernels.get_kernel("delta_table")(values, num_bits),
            reference.delta_table(values, num_bits),
        )

    def test_delta_column(self):
        for value in (-128, -1, 0, 1, 127):
            self.assert_bytes_equal(
                kernels.get_kernel("delta_column")(value, 8),
                reference.delta_column(value, 8),
            )


class TestFallback:
    """engine="compiled" with no toolchain: warn once, stay bit-identical."""

    def _disable_backends(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "none")
        monkeypatch.delenv("REPRO_DEFAULT_ENGINE", raising=False)
        # Hide numba even if it were importable, so the probe exercises the
        # true toolchain-absent path rather than relying on this box.
        original_import = builtins.__import__

        def no_numba(name, *args, **kwargs):
            if name == "numba" or name.startswith("numba."):
                raise ImportError("numba hidden for fallback test")
            return original_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_numba)

    def test_backend_absent_reports_unavailable(self, fresh_registry):
        self._disable_backends(fresh_registry)
        assert not kernels.available()
        assert kernels.backend_name() is None

    def test_requesting_compiled_warns_exactly_once(self, fresh_registry):
        self._disable_backends(fresh_registry)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with kernels.use("compiled") as enabled:
                assert not enabled
            with kernels.use("compiled") as enabled:
                assert not enabled
        fallback = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(fallback) == 1
        assert "falling back" in str(fallback[0].message)

    def test_fallback_results_are_reference_bit_identical(self, fresh_registry):
        self._disable_backends(fresh_registry)
        x = rich_inputs()
        rng = np.random.default_rng(7)
        weight_matrix = rng.standard_normal((5, 3 * 9))
        bias = rng.standard_normal(5)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with kernels.use("compiled"):
                got_out, got_cols = kernels.conv2d_forward(
                    x, weight_matrix, bias, (3, 3), 1, 1
                )
                got_bn = kernels.bn_infer(
                    x, bias[:3], bias[:3], bias[:3], np.abs(bias[:3]) + 0.1, 1e-5
                )
                got_relu = kernels.relu(x)
                got_table = kernels.delta_table(
                    np.arange(-8, 8, dtype=np.int64), 4
                )
        want_out, want_cols = reference.conv2d_forward(
            x, weight_matrix, bias, (3, 3), 1, 1
        )
        assert got_out.tobytes() == want_out.tobytes()
        assert got_cols.tobytes() == want_cols.tobytes()
        assert got_bn.tobytes() == reference.bn_infer(
            x, bias[:3], bias[:3], bias[:3], np.abs(bias[:3]) + 0.1, 1e-5
        ).tobytes()
        assert got_relu.tobytes() == reference.relu(x).tobytes()
        assert np.array_equal(
            got_table, reference.delta_table(np.arange(-8, 8, dtype=np.int64), 4)
        )

    def test_unknown_forced_backend_falls_back(self, fresh_registry):
        fresh_registry.setenv("REPRO_KERNEL_BACKEND", "cuda")
        assert not kernels.available()


class TestScratch:
    def test_same_shape_reuses_buffer(self):
        kernels.clear_scratch()
        first = kernels.scratch_buffer("im2col", (2, 18, 9))
        second = kernels.scratch_buffer("im2col", (2, 18, 9))
        assert first is second
        assert first.shape == (2, 18, 9) and first.dtype == np.float64

    def test_distinct_shapes_and_names_get_distinct_buffers(self):
        kernels.clear_scratch()
        a = kernels.scratch_buffer("im2col", (2, 18, 9))
        b = kernels.scratch_buffer("im2col", (3, 18, 9))
        c = kernels.scratch_buffer("other", (2, 18, 9))
        assert a is not b and a is not c

    def test_clear_scratch_drops_buffers(self):
        before = kernels.scratch_buffer("im2col", (4, 4, 4))
        kernels.clear_scratch()
        after = kernels.scratch_buffer("im2col", (4, 4, 4))
        assert before is not after


class TestIm2colMemo:
    @needs_backend
    def test_repeat_forward_same_input_is_bit_identical(self):
        x = rich_inputs()
        rng = np.random.default_rng(8)
        weights = [rng.standard_normal((5, 3 * 9)) for _ in range(3)]
        want = [reference.conv2d_forward(x, w, None, (3, 3), 1, 1)[0] for w in weights]
        with kernels.use("compiled"):
            with kernels.im2col_memo() as scope:
                assert scope == {}
                got = [
                    kernels.conv2d_forward(x, w, None, (3, 3), 1, 1)[0]
                    for w in weights
                ]
                assert len(scope) == 1  # one entry per conv signature
        for g, w in zip(got, want):
            assert g.tobytes() == w.tobytes()

    @needs_backend
    def test_different_input_object_is_not_served_stale_columns(self):
        """Same shape, different array: the memo must miss, not corrupt."""
        rng = np.random.default_rng(9)
        x1 = rng.standard_normal((2, 3, 5, 5))
        x2 = rng.standard_normal((2, 3, 5, 5))
        w = rng.standard_normal((4, 3 * 9))
        with kernels.use("compiled"):
            with kernels.im2col_memo():
                first = kernels.conv2d_forward(x1, w, None, (3, 3), 1, 1)[0]
                second = kernels.conv2d_forward(x2, w, None, (3, 3), 1, 1)[0]
        assert first.tobytes() == reference.conv2d_forward(
            x1, w, None, (3, 3), 1, 1
        )[0].tobytes()
        assert second.tobytes() == reference.conv2d_forward(
            x2, w, None, (3, 3), 1, 1
        )[0].tobytes()

    @needs_backend
    def test_memo_bypasses_scratch_pool(self):
        """Memoised columns must not live in the clobberable scratch buffer.

        Inside a memo scope a second same-shape conv on a different input
        would overwrite a shared scratch buffer holding the first input's
        memoised columns; the dispatcher therefore allocates fresh columns
        whenever the memo is active, even with ``reuse_scratch=True``.
        """
        rng = np.random.default_rng(10)
        x1 = rng.standard_normal((2, 3, 5, 5))
        x2 = rng.standard_normal((2, 3, 5, 5))
        w = rng.standard_normal((4, 3 * 9))
        with kernels.use("compiled"):
            with kernels.im2col_memo():
                kernels.conv2d_forward(x1, w, None, (3, 3), 1, 1, reuse_scratch=True)
                kernels.conv2d_forward(x2, w, None, (3, 3), 1, 1, reuse_scratch=True)
                # x1 hits its memo entry again; its columns must still be x1's.
                replay = kernels.conv2d_forward(x1, w, None, (3, 3), 1, 1)[0]
        assert replay.tobytes() == reference.conv2d_forward(
            x1, w, None, (3, 3), 1, 1
        )[0].tobytes()

    def test_noop_outside_compiled_tier(self):
        with kernels.im2col_memo() as scope:
            assert scope is None

    @needs_backend
    def test_nested_scope_keeps_outer_memo(self):
        with kernels.use("compiled"):
            with kernels.im2col_memo() as outer:
                with kernels.im2col_memo() as inner:
                    assert inner is outer
