"""Tests for the synthetic datasets and the training loop."""

import numpy as np
import pytest

from repro.nn.data import (
    Dataset,
    build_dataset,
    make_cifar_like,
    make_imagenet_like,
    make_speech_commands_like,
)
from repro.nn.layers import Flatten, Linear, ReLU, Sequential
from repro.nn.training import evaluate_on_dataset, train


class TestDatasetContainer:
    def test_mismatched_sizes_rejected(self):
        x = np.zeros((4, 3))
        with pytest.raises(ValueError):
            Dataset(x, np.zeros(3), x, np.zeros(4), num_classes=2)

    def test_random_guess_accuracy(self):
        dataset = make_cifar_like(num_classes=10, train_per_class=2, test_per_class=2)
        assert dataset.random_guess_accuracy == pytest.approx(10.0)

    def test_batches_cover_all_samples(self):
        dataset = make_cifar_like(num_classes=4, image_size=8, train_per_class=5, test_per_class=2)
        seen = 0
        for batch_x, batch_y in dataset.batches(8, seed=0):
            assert batch_x.shape[0] == batch_y.shape[0]
            seen += batch_x.shape[0]
        assert seen == 20

    def test_attack_batch_is_subset_of_test(self):
        dataset = make_cifar_like(num_classes=4, image_size=8, train_per_class=5, test_per_class=3)
        x, y = dataset.attack_batch(6, seed=1)
        assert x.shape[0] == 6
        assert x.shape[0] == y.shape[0]

    def test_attack_batch_larger_than_test_clamped(self):
        dataset = make_cifar_like(num_classes=2, image_size=8, train_per_class=3, test_per_class=2)
        x, _ = dataset.attack_batch(100, seed=1)
        assert x.shape[0] == 4


class TestDatasetBuilders:
    def test_shapes(self):
        cifar = make_cifar_like(num_classes=3, image_size=8, train_per_class=2, test_per_class=1)
        assert cifar.input_shape == (3, 8, 8)
        imagenet = make_imagenet_like(num_classes=4, image_size=8, train_per_class=2, test_per_class=1)
        assert imagenet.input_shape == (3, 8, 8)
        speech = make_speech_commands_like(num_classes=3, waveform_length=64, train_per_class=2, test_per_class=1)
        assert speech.input_shape == (1, 64)

    def test_determinism(self):
        a = make_cifar_like(num_classes=3, image_size=8, train_per_class=2, test_per_class=1, seed=9)
        b = make_cifar_like(num_classes=3, image_size=8, train_per_class=2, test_per_class=1, seed=9)
        assert np.allclose(a.train_x, b.train_x)
        assert np.array_equal(a.train_y, b.train_y)

    def test_labels_are_balanced(self):
        dataset = make_cifar_like(num_classes=5, image_size=8, train_per_class=4, test_per_class=2)
        counts = np.bincount(dataset.train_y, minlength=5)
        assert np.all(counts == 4)

    def test_registry_builder(self):
        dataset = build_dataset("speech_commands_like", num_classes=3, waveform_length=32,
                                train_per_class=2, test_per_class=1)
        assert dataset.num_classes == 3
        with pytest.raises(KeyError):
            build_dataset("mnist")


class TestTraining:
    def _mlp(self, dataset):
        features = int(np.prod(dataset.input_shape))
        return Sequential(Flatten(), Linear(features, 32), ReLU(), Linear(32, dataset.num_classes))

    def test_training_improves_over_random_guess(self, tiny_dataset):
        model = self._mlp(tiny_dataset)
        result = train(model, tiny_dataset, epochs=5, batch_size=16, lr=3e-3, seed=0)
        assert result.test_accuracy > tiny_dataset.random_guess_accuracy * 1.5
        assert len(result.train_losses) == 5
        assert result.train_losses[-1] < result.train_losses[0]

    def test_model_left_in_eval_mode(self, tiny_dataset):
        model = self._mlp(tiny_dataset)
        train(model, tiny_dataset, epochs=1, batch_size=16)
        assert not model.training

    def test_evaluate_on_dataset_range(self, tiny_dataset):
        model = self._mlp(tiny_dataset)
        accuracy = evaluate_on_dataset(model, tiny_dataset)
        assert 0.0 <= accuracy <= 100.0

    def test_invalid_epochs(self, tiny_dataset):
        with pytest.raises(ValueError):
            train(self._mlp(tiny_dataset), tiny_dataset, epochs=0)
