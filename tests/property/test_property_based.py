"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.address import AddressMapper
from repro.dram.geometry import DramGeometry
from repro.faults.profiles import BitFlipProfile
from repro.nn.autograd import Tensor
from repro.nn.bitops import (
    bit_flip_delta,
    bits_to_int,
    flip_bit,
    from_twos_complement,
    hamming_distance,
    int_to_bits,
    to_twos_complement,
)
from repro.nn.quantization import dequantize_array, quantize_array
from repro.utils.units import (
    cycles_to_ms,
    hammer_counts_to_time_ms,
    ms_to_cycles,
    time_ms_to_hammer_counts,
)

int8_values = st.integers(min_value=-128, max_value=127)
bit_positions = st.integers(min_value=0, max_value=7)


class TestBitopsProperties:
    @given(int8_values)
    def test_twos_complement_roundtrip(self, value):
        encoded = to_twos_complement(np.array([value]), 8)
        assert from_twos_complement(encoded, 8)[0] == value

    @given(int8_values)
    def test_bit_expansion_roundtrip(self, value):
        bits = int_to_bits(np.array([value]), 8)
        assert bits_to_int(bits, 8)[0] == value

    @given(int8_values, bit_positions)
    def test_flip_is_involution_and_stays_in_range(self, value, bit):
        flipped = flip_bit(value, bit, 8)
        assert -128 <= flipped <= 127
        assert flip_bit(flipped, bit, 8) == value

    @given(int8_values, bit_positions)
    def test_flip_changes_exactly_one_bit(self, value, bit):
        flipped = flip_bit(value, bit, 8)
        assert hamming_distance(np.array([value]), np.array([flipped]), 8) == 1

    @given(int8_values, bit_positions)
    def test_delta_magnitude_is_power_of_two(self, value, bit):
        delta = abs(bit_flip_delta(value, bit, 8))
        assert delta == 2 ** bit


class TestQuantizationProperties:
    @given(
        st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=1, max_size=64)
    )
    def test_quantization_error_bounded(self, values):
        weights = np.asarray(values)
        ints, scale = quantize_array(weights, 8)
        reconstructed = dequantize_array(ints, scale)
        assert np.all(np.abs(reconstructed - weights) <= scale / 2 + 1e-9)
        assert ints.min() >= -128 and ints.max() <= 127

    @given(st.floats(min_value=0.01, max_value=100, allow_nan=False))
    def test_quantization_scale_invariance_of_sign(self, magnitude):
        weights = np.array([-magnitude, magnitude / 3, magnitude])
        ints, _ = quantize_array(weights, 8)
        assert ints[0] < 0 < ints[2]


class TestAddressProperties:
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=64),
        st.data(),
    )
    def test_flat_cell_roundtrip(self, banks, rows, cols, data):
        geometry = DramGeometry(num_banks=banks, rows_per_bank=rows, cols_per_row=cols)
        mapper = AddressMapper(geometry)
        flat = data.draw(st.integers(min_value=0, max_value=geometry.total_cells - 1))
        assert mapper.to_flat(mapper.to_cell(flat)) == flat


class TestUnitsProperties:
    @given(st.floats(min_value=0, max_value=1e10, allow_nan=False))
    def test_cycles_ms_roundtrip(self, cycles):
        assert ms_to_cycles(cycles_to_ms(cycles)) == np.float64(cycles).round() or True
        assert abs(ms_to_cycles(cycles_to_ms(cycles)) - cycles) <= 1.0

    @given(st.floats(min_value=0, max_value=1e7, allow_nan=False))
    def test_hammer_count_time_roundtrip(self, hammer_counts):
        time_ms = hammer_counts_to_time_ms(hammer_counts)
        assert time_ms_to_hammer_counts(time_ms) == np.float64(hammer_counts).item() or True
        assert abs(time_ms_to_hammer_counts(time_ms) - hammer_counts) < 1e-3 * max(hammer_counts, 1)


class TestProfileProperties:
    @settings(max_examples=25)
    @given(
        st.lists(st.integers(min_value=0, max_value=9999), min_size=0, max_size=200),
        st.lists(st.integers(min_value=0, max_value=9999), min_size=0, max_size=200),
    )
    def test_overlap_is_symmetric_and_bounded(self, a_indices, b_indices):
        a = BitFlipProfile("rowhammer", np.array(sorted(set(a_indices)), dtype=np.int64),
                           np.zeros(len(set(a_indices)), dtype=np.int8), 10_000)
        b = BitFlipProfile("rowpress", np.array(sorted(set(b_indices)), dtype=np.int64),
                           np.zeros(len(set(b_indices)), dtype=np.int8), 10_000)
        assert a.overlap(b).size == b.overlap(a).size
        assert a.overlap(b).size <= min(len(a), len(b))
        assert 0.0 <= a.overlap_fraction(b) <= 1.0

    @settings(max_examples=25)
    @given(st.lists(st.integers(min_value=0, max_value=999), min_size=1, max_size=100))
    def test_profile_restriction_is_subset(self, indices):
        profile = BitFlipProfile("rowpress", np.array(sorted(set(indices)), dtype=np.int64),
                                 np.zeros(len(set(indices)), dtype=np.int8), 1_000)
        restricted = profile.restricted_to(indices[: len(indices) // 2])
        assert set(restricted.flat_indices.tolist()) <= set(profile.flat_indices.tolist())


class TestAutogradProperties:
    @settings(max_examples=25)
    @given(
        st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False), min_size=2, max_size=16)
    )
    def test_softmax_is_distribution(self, values):
        tensor = Tensor(np.asarray(values))
        out = tensor.softmax(axis=-1).data
        assert np.all(out >= 0)
        assert out.sum() == np.float64(1.0).item() or abs(out.sum() - 1.0) < 1e-9

    @settings(max_examples=25)
    @given(
        st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False), min_size=1, max_size=16)
    )
    def test_sum_gradient_is_ones(self, values):
        tensor = Tensor(np.asarray(values), requires_grad=True)
        tensor.sum().backward()
        assert np.allclose(tensor.grad, 1.0)
