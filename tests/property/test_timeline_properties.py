"""Property-based tests (hypothesis) for CommandTimeline invariants.

Randomized traces pin the timeline validator's contract: builder output
always validates; cycles are non-decreasing; no two ACTs hit the same row
of the same bank closer than tRC; every tREFI boundary inside the trace
carries exactly one REF; and the TRR sampler never retains more rows than
its capacity, always a deterministic subset of the window's ACT rows.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.defenses.trr import TRR_SAMPLING_POLICIES, TrrSampler
from repro.dram.geometry import DramGeometry
from repro.dram.timeline import (
    OP_ACT,
    OP_PRE,
    OP_REF,
    CommandTimeline,
    TimelineError,
    build_hammer_timeline,
    build_press_timeline,
    build_refsync_timeline,
)
from repro.dram.timing import DramTimings

TIMINGS = DramTimings()
GEOMETRY = DramGeometry(num_banks=2, rows_per_bank=128, cols_per_row=64)

windows_st = st.integers(min_value=1, max_value=6)
acts_st = st.integers(min_value=1, max_value=64)
phase_st = st.integers(min_value=0, max_value=8)
row_st = st.integers(min_value=1, max_value=126)


def arrays(records):
    """Build a CommandTimeline from (op, bank, row, cycle, open) tuples."""
    columns = list(zip(*records))
    return CommandTimeline(
        ops=np.array(columns[0], dtype=np.int64),
        banks=np.array(columns[1], dtype=np.int64),
        rows=np.array(columns[2], dtype=np.int64),
        cycles=np.array(columns[3], dtype=np.int64),
        open_cycles=np.array(columns[4], dtype=np.int64),
    )


class TestBuildersAlwaysValidate:
    @settings(max_examples=40, deadline=None)
    @given(windows=windows_st, acts=acts_st, row=row_st, seed=st.integers(0, 2**16))
    def test_hammer_builder_validates(self, windows, acts, row, seed):
        rows = (row,) if seed % 2 == 0 else tuple(sorted({row, min(row + 2, 126)}))
        timeline = build_hammer_timeline(
            TIMINGS, bank=seed % 2, aggressor_rows=rows,
            windows=windows, acts_per_window=acts,
        )
        timeline.validate(TIMINGS, GEOMETRY)
        assert timeline.num_windows(TIMINGS) == windows

    @settings(max_examples=40, deadline=None)
    @given(windows=windows_st, acts=acts_st, phase=phase_st, row=row_st)
    def test_refsync_builder_validates(self, windows, acts, phase, row):
        decoys = tuple(sorted({(row + 40) % 120 + 2, (row + 60) % 120 + 2}))
        timeline = build_refsync_timeline(
            TIMINGS, bank=0, aggressor_rows=(row,), windows=windows,
            acts_per_window=acts, phase=phase, decoy_rows=decoys,
        )
        timeline.validate(TIMINGS, GEOMETRY)

    @settings(max_examples=25, deadline=None)
    @given(
        windows=windows_st,
        opens=st.integers(min_value=1, max_value=8),
        open_cycles=st.integers(min_value=44, max_value=2_000),
        row=row_st,
    )
    def test_press_builder_validates(self, windows, opens, open_cycles, row):
        timeline = build_press_timeline(
            TIMINGS, bank=1, pressed_rows=(row,), windows=windows,
            opens_per_window=opens, open_cycles=open_cycles,
        )
        timeline.validate(TIMINGS, GEOMETRY)

    def test_builder_rejects_oversubscribed_window(self):
        slots = (TIMINGS.t_refi_cycles - TIMINGS.t_rp_cycles) // TIMINGS.hammer_iteration_cycles
        with pytest.raises(TimelineError):
            build_refsync_timeline(
                TIMINGS, bank=0, aggressor_rows=(24,), windows=1,
                acts_per_window=slots, phase=1,
            )


class TestValidatorRejectsMutations:
    def base(self, windows=2, acts=16):
        return build_hammer_timeline(
            TIMINGS, bank=0, aggressor_rows=(23, 25),
            windows=windows, acts_per_window=acts,
        )

    def test_cycle_order_violation_rejected(self):
        timeline = self.base()
        cycles = timeline.cycles.copy()
        cycles[3], cycles[4] = cycles[4], cycles[3]
        broken = CommandTimeline(
            ops=timeline.ops, banks=timeline.banks, rows=timeline.rows,
            cycles=cycles, open_cycles=timeline.open_cycles,
        )
        with pytest.raises(TimelineError, match="non-decreasing"):
            broken.validate(TIMINGS)

    def test_act_within_trc_rejected(self):
        t_refi = TIMINGS.t_refi_cycles
        records = [
            (OP_ACT, 0, 24, 100, 0),
            (OP_ACT, 0, 24, 100 + TIMINGS.t_rc_cycles - 1, 0),
            (OP_REF, -1, -1, t_refi, 0),
        ]
        with pytest.raises(TimelineError, match="tRC"):
            arrays(records).validate(TIMINGS)

    def test_act_at_exactly_trc_accepted(self):
        t_refi = TIMINGS.t_refi_cycles
        records = [
            (OP_ACT, 0, 24, 100, 0),
            (OP_ACT, 0, 24, 100 + TIMINGS.t_rc_cycles, 0),
            (OP_REF, -1, -1, t_refi, 0),
        ]
        arrays(records).validate(TIMINGS)

    def test_missing_ref_rejected(self):
        timeline = self.base(windows=3)
        # Remove the middle boundary's REF: window 2's boundary has no REF.
        boundary = 2 * TIMINGS.t_refi_cycles
        keep = ~((timeline.ops == OP_REF) & (timeline.cycles == boundary))
        broken = CommandTimeline(
            ops=timeline.ops[keep], banks=timeline.banks[keep],
            rows=timeline.rows[keep], cycles=timeline.cycles[keep],
            open_cycles=timeline.open_cycles[keep],
        )
        with pytest.raises(TimelineError, match="expected boundaries"):
            broken.validate(TIMINGS)

    def test_duplicate_ref_rejected(self):
        timeline = self.base(windows=2)
        boundary = TIMINGS.t_refi_cycles
        ops = np.append(timeline.ops, OP_REF)
        banks = np.append(timeline.banks, -1)
        rows = np.append(timeline.rows, -1)
        cycles = np.append(timeline.cycles, boundary)
        opens = np.append(timeline.open_cycles, 0)
        order = np.argsort(cycles, kind="stable")
        broken = CommandTimeline(
            ops=ops[order], banks=banks[order], rows=rows[order],
            cycles=cycles[order], open_cycles=opens[order],
        )
        with pytest.raises(TimelineError, match="duplicate"):
            broken.validate(TIMINGS)

    def test_off_boundary_ref_rejected(self):
        records = [
            (OP_ACT, 0, 24, 100, 0),
            (OP_REF, -1, -1, TIMINGS.t_refi_cycles + 7, 0),
        ]
        with pytest.raises(TimelineError, match="boundar"):
            arrays(records).validate(TIMINGS)

    def test_out_of_range_row_rejected(self):
        records = [
            (OP_ACT, 0, GEOMETRY.rows_per_bank, 100, 0),
            (OP_REF, -1, -1, TIMINGS.t_refi_cycles, 0),
        ]
        with pytest.raises(TimelineError, match="coordinates"):
            arrays(records).validate(TIMINGS, GEOMETRY)

    def test_unknown_opcode_rejected(self):
        with pytest.raises(TimelineError, match="opcode"):
            arrays([(7, 0, 24, 100, 0)]).validate(TIMINGS)


class TestExactlyOneRefPerWindow:
    @settings(max_examples=30, deadline=None)
    @given(windows=windows_st, acts=acts_st)
    def test_builder_output_has_one_ref_per_boundary(self, windows, acts):
        timeline = build_hammer_timeline(
            TIMINGS, bank=0, aggressor_rows=(23, 25),
            windows=windows, acts_per_window=acts,
        )
        refs = timeline.cycles[timeline.ops == OP_REF]
        expected = TIMINGS.t_refi_cycles * np.arange(1, windows + 1)
        assert np.array_equal(np.sort(refs), expected)


class TestSamplerProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        policy=st.sampled_from(sorted(TRR_SAMPLING_POLICIES)),
        seed=st.integers(min_value=0, max_value=2**16),
        window=st.integers(min_value=0, max_value=50),
        acts=st.lists(st.integers(min_value=0, max_value=127), min_size=0, max_size=40),
    )
    def test_sample_bounded_and_deterministic(self, capacity, policy, seed, window, acts):
        sampler = TrrSampler(capacity=capacity, policy=policy, seed=seed)
        sampled = sampler.sample_window(window, 0, list(acts))
        assert len(sampled) <= capacity
        assert len(sampled) == len(set(sampled))  # no duplicates
        assert set(sampled) <= set(acts)
        replay = TrrSampler(capacity=capacity, policy=policy, seed=seed)
        assert replay.sample_window(window, 0, list(acts)) == sampled

    @settings(max_examples=30, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        acts=st.lists(st.integers(min_value=0, max_value=127), min_size=1, max_size=40),
    )
    def test_first_policy_keeps_arrival_order(self, capacity, acts):
        sampler = TrrSampler(capacity=capacity, policy="first", seed=0)
        sampled = sampler.sample_window(0, 0, list(acts))
        distinct = list(dict.fromkeys(acts))
        assert sampled == distinct[:capacity]

    @settings(max_examples=30, deadline=None)
    @given(
        row=st.integers(min_value=0, max_value=127),
        blast=st.integers(min_value=1, max_value=3),
    )
    def test_victim_rows_within_blast_radius(self, row, blast):
        sampler = TrrSampler(capacity=1, blast_radius=blast)
        victims = sampler.victim_rows(row, GEOMETRY.rows_per_bank)
        assert all(0 <= victim < GEOMETRY.rows_per_bank for victim in victims)
        assert all(0 < abs(victim - row) <= blast for victim in victims)
        assert len(victims) == len(set(victims))

    def test_histogram_counts_windows(self):
        sampler = TrrSampler(capacity=2, policy="first", seed=0)
        for window in range(5):
            sampler.sample_window(window, 3, [10, 11, 12])
        snapshot = sampler.histogram_snapshot()
        assert snapshot == {3: {10: 5, 11: 5}}
        assert sampler.windows_observed == 5
        assert sampler.rows_sampled == 10
        sampler.reset()
        assert sampler.histogram_snapshot() == {}


class TestRoundTrips:
    @settings(max_examples=20, deadline=None)
    @given(windows=windows_st, acts=acts_st)
    def test_trace_round_trip(self, windows, acts):
        timeline = build_hammer_timeline(
            TIMINGS, bank=0, aggressor_rows=(23, 25),
            windows=windows, acts_per_window=acts,
        )
        rebuilt = CommandTimeline.from_trace(timeline.to_trace())
        assert np.array_equal(rebuilt.ops, timeline.ops)
        assert np.array_equal(rebuilt.banks, timeline.banks)
        assert np.array_equal(rebuilt.rows, timeline.rows)
        assert np.array_equal(rebuilt.cycles, timeline.cycles)
        assert np.array_equal(rebuilt.open_cycles, timeline.open_cycles)
