"""Shared fixtures for the test suite.

Expensive artefacts (a trained tiny surrogate, deployment profiles) are
session-scoped so the many tests that need them pay the cost once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dram.chip import DramChip
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimings
from repro.dram.vulnerability import VulnerabilityParameters
from repro.models.resnet_cifar import ResNetCifar
from repro.nn.data import make_cifar_like
from repro.nn.quantization import quantize_model
from repro.nn.training import train


#: Dense vulnerability parameters used by tests that need flips to be
#: plentiful on a tiny chip.
DENSE_PARAMS = VulnerabilityParameters(rh_density=0.05, rp_density=0.25)


@pytest.fixture
def tiny_geometry() -> DramGeometry:
    """A chip geometry small enough to enumerate exhaustively."""
    return DramGeometry(num_banks=2, rows_per_bank=16, cols_per_row=64)


@pytest.fixture
def small_geometry() -> DramGeometry:
    """A slightly larger geometry for fault-injection tests."""
    return DramGeometry(num_banks=2, rows_per_bank=32, cols_per_row=512)


@pytest.fixture
def dense_chip(small_geometry) -> DramChip:
    """A chip with dense vulnerable-cell populations (guaranteed flips)."""
    return DramChip(small_geometry, vulnerability_parameters=DENSE_PARAMS, seed=7)


@pytest.fixture
def default_timings() -> DramTimings:
    """The DDR4-2400 timing set used throughout the paper."""
    return DramTimings()


@pytest.fixture(scope="session")
def tiny_dataset():
    """A very small CIFAR-like dataset for fast training tests."""
    return make_cifar_like(
        num_classes=4, image_size=8, train_per_class=24, test_per_class=12, seed=5,
        noise_std=1.0, basis_dim=3,
    )


@pytest.fixture(scope="session")
def tiny_trained_model(tiny_dataset):
    """A tiny trained (unquantized) ResNet surrogate plus its clean state.

    The surrogate must end up comfortably above the random-guess level so the
    attack tests have accuracy headroom to destroy.
    """
    model = ResNetCifar(
        depth=8, num_classes=tiny_dataset.num_classes, base_width=8,
        rng=np.random.default_rng(0),
    )
    train(model, tiny_dataset, epochs=6, batch_size=16, lr=3e-3, seed=1)
    return model, model.state_dict()


@pytest.fixture
def tiny_quantized_model(tiny_trained_model):
    """A freshly re-quantized copy of the tiny trained model (per test)."""
    model, clean_state = tiny_trained_model
    model.load_state_dict(clean_state)
    infos = quantize_model(model)
    return model, infos
