"""Tests for the Table-I roster registry."""

import pytest

from repro.models.registry import MODEL_REGISTRY, TABLE1_ROSTER, build_model, get_spec


class TestRosterContents:
    def test_eleven_models(self):
        assert len(TABLE1_ROSTER) == 11
        assert len(MODEL_REGISTRY) == 11

    def test_expected_keys_present(self):
        expected = {
            "resnet20", "resnet32", "resnet44",
            "resnet34", "resnet50", "resnet101",
            "deit_tiny", "deit_small", "deit_base",
            "vmamba_tiny", "m11",
        }
        assert set(MODEL_REGISTRY) == expected

    def test_order_matches_table1(self):
        keys = [spec.key for spec in TABLE1_ROSTER]
        assert keys[0] == "resnet20" and keys[-1] == "m11"

    def test_paper_numbers_recorded(self):
        spec = get_spec("resnet20")
        assert spec.paper.rowhammer_bit_flips == 36
        assert spec.paper.rowpress_bit_flips == 8
        assert spec.paper.clean_accuracy == pytest.approx(92.42)

    def test_paper_flip_ratios_in_expected_range(self):
        # The paper reports RowPress needing up to ~4x fewer flips, 3.6x avg.
        ratios = [spec.paper.flip_ratio for spec in TABLE1_ROSTER]
        assert all(1.5 <= ratio <= 6.0 for ratio in ratios)
        mean = sum(ratios) / len(ratios)
        assert 3.0 <= mean <= 4.2

    def test_families_cover_all_architecture_types(self):
        families = {spec.family for spec in TABLE1_ROSTER}
        assert families == {"cnn", "vision_transformer", "state_space", "audio_cnn"}

    def test_datasets_cover_all_modalities(self):
        datasets = {spec.paper_dataset for spec in TABLE1_ROSTER}
        assert datasets == {"CIFAR-10", "ImageNet", "Google Speech Command"}


class TestBuilders:
    def test_get_spec_unknown_key(self):
        with pytest.raises(KeyError, match="resnet20"):
            get_spec("alexnet")

    def test_build_model_returns_consistent_pair(self):
        model, dataset = build_model("deit_tiny", seed=1)
        logits_dim = model.head.out_features
        assert logits_dim == dataset.num_classes

    def test_build_dataset_deterministic_per_seed(self):
        spec = get_spec("resnet20")
        a = spec.build_dataset(seed=3)
        b = spec.build_dataset(seed=3)
        assert (a.train_x == b.train_x).all()

    def test_build_model_deterministic_per_seed(self):
        spec = get_spec("resnet20")
        import numpy as np

        a = spec.build_model(num_classes=10, seed=3)
        b = spec.build_model(num_classes=10, seed=3)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.allclose(pa.data, pb.data)
