"""Tests for the surrogate model zoo (topology and forward/backward)."""

import numpy as np
import pytest

from repro.models import (
    M11,
    DeiT,
    ResNetCifar,
    ResNetImageNet,
    VMamba,
    deit_base,
    deit_small,
    deit_tiny,
    m11,
    resnet20,
    resnet32,
    resnet44,
    resnet34,
    resnet50,
    resnet101,
    vmamba_tiny,
)
from repro.nn.autograd import Tensor
from repro.nn.layers import Conv1d, Conv2d, Linear
from repro.nn.loss import cross_entropy

rng = np.random.default_rng(5)


def count_weight_layers(model, layer_types=(Conv2d, Conv1d, Linear)):
    return sum(1 for _, module in model.named_modules() if isinstance(module, layer_types))


class TestCifarResNets:
    def test_depth_rule(self):
        with pytest.raises(ValueError):
            ResNetCifar(depth=21)

    @pytest.mark.parametrize("factory,depth", [(resnet20, 20), (resnet32, 32), (resnet44, 44)])
    def test_conv_count_matches_depth(self, factory, depth):
        model = factory(num_classes=10, base_width=4, rng=rng)
        # depth = 6n + 2 means (depth - 2) 3x3 convs in blocks + stem + head,
        # plus the 1x1 downsample convs at the two stage transitions.
        convs = sum(1 for _, m in model.named_modules() if isinstance(m, Conv2d))
        assert convs == (depth - 2) + 1 + 2
        assert isinstance(model.head, Linear)

    def test_forward_backward(self):
        model = resnet20(num_classes=10, base_width=4, rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 16, 16)))
        logits = model(x)
        assert logits.shape == (2, 10)
        cross_entropy(logits, np.array([0, 1])).backward()
        assert model.stem.weight.grad is not None

    def test_parameter_count_ordering(self):
        p20 = resnet20(base_width=4, rng=rng).num_parameters()
        p32 = resnet32(base_width=4, rng=rng).num_parameters()
        p44 = resnet44(base_width=4, rng=rng).num_parameters()
        assert p20 < p32 < p44


class TestImageNetResNets:
    def test_stage_layouts(self):
        model = resnet34(num_classes=5, base_width=4, rng=rng)
        assert model.stage_blocks == [3, 4, 6, 3] and not model.bottleneck
        model = resnet101(num_classes=5, base_width=4, rng=rng)
        assert model.stage_blocks == [3, 4, 23, 3] and model.bottleneck

    def test_invalid_stage_count(self):
        with pytest.raises(ValueError):
            ResNetImageNet([2, 2, 2], bottleneck=False)

    @pytest.mark.parametrize("factory", [resnet34, resnet50])
    def test_forward_shapes(self, factory):
        model = factory(num_classes=7, base_width=4, rng=rng)
        logits = model(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert logits.shape == (2, 7)

    def test_parameter_count_ordering(self):
        p34 = resnet34(base_width=4, rng=rng).num_parameters()
        p50 = resnet50(base_width=4, rng=rng).num_parameters()
        p101 = resnet101(base_width=4, rng=rng).num_parameters()
        assert p34 < p101 and p50 < p101


class TestDeiT:
    def test_sizes_are_ordered(self):
        tiny = deit_tiny(num_classes=5, rng=rng).num_parameters()
        small = deit_small(num_classes=5, rng=rng).num_parameters()
        base = deit_base(num_classes=5, rng=rng).num_parameters()
        assert tiny < small < base

    def test_forward_backward_and_image_size_override(self):
        model = deit_tiny(num_classes=6, rng=rng, image_size=8)
        logits = model(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert logits.shape == (2, 6)
        cross_entropy(logits, np.array([0, 1])).backward()
        assert model.head.weight.grad is not None

    def test_token_count(self):
        model = DeiT(image_size=16, patch_size=4, embed_dim=16, depth=1, num_heads=2)
        assert model.patch_embed.num_patches == 16
        assert model.positional.position.shape[1] == 17  # +1 class token


class TestVMambaAndM11:
    def test_vmamba_forward_backward(self):
        model = vmamba_tiny(num_classes=6, rng=rng, image_size=8)
        logits = model(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert logits.shape == (2, 6)
        cross_entropy(logits, np.array([0, 1])).backward()
        assert model.head.weight.grad is not None

    def test_vmamba_has_ssm_blocks(self):
        from repro.nn.layers import SelectiveSSMBlock

        model = VMamba(embed_dim=16, depth=3, num_classes=4)
        blocks = [m for _, m in model.named_modules() if isinstance(m, SelectiveSSMBlock)]
        assert len(blocks) == 3

    def test_m11_has_eleven_weight_layers(self):
        model = m11(num_classes=10, base_width=4, rng=rng)
        # 1 stem conv + 9 group convs + 1 linear head = 11 weight layers.
        assert count_weight_layers(model) == 11

    def test_m11_forward_backward(self):
        model = m11(num_classes=10, base_width=4, rng=rng)
        logits = model(Tensor(rng.normal(size=(2, 1, 256))))
        assert logits.shape == (2, 10)
        cross_entropy(logits, np.array([0, 3])).backward()
        assert model.stem.weight.grad is not None

    def test_m11_widths_follow_group_multipliers(self):
        model = M11(num_classes=4, base_width=4)
        assert model.head.in_features == 4 * 8  # last group multiplier is 8


class TestDeterminism:
    def test_same_rng_gives_same_weights(self):
        a = resnet20(base_width=4, rng=np.random.default_rng(7))
        b = resnet20(base_width=4, rng=np.random.default_rng(7))
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.allclose(pa.data, pb.data)
