"""Chaos layer: fault specs, plan activation, kinds, env inheritance."""

import errno
import time

import pytest

from repro.testing import chaos
from repro.testing.chaos import (
    ALLOW_CRASH_ENV,
    PLAN_ENV,
    ChaosError,
    FaultPlan,
    FaultSpec,
)


@pytest.fixture(autouse=True)
def _clean_chaos_state(monkeypatch):
    """Every test starts (and leaves) with no plan and no env activation."""
    monkeypatch.delenv(PLAN_ENV, raising=False)
    monkeypatch.delenv(ALLOW_CRASH_ENV, raising=False)
    chaos.reset()
    yield
    chaos.reset()


class TestFaultSpec:
    def test_hit_window(self):
        fault = FaultSpec(point="store.write", kind="error", after=2, count=2)
        assert not fault.matches("store.write", 1)
        assert fault.matches("store.write", 2)
        assert fault.matches("store.write", 3)
        assert not fault.matches("store.write", 4)

    def test_glob_points(self):
        fault = FaultSpec(point="distributed.*", kind="disconnect")
        assert fault.matches("distributed.send_chunk", 1)
        assert fault.matches("distributed.handshake", 1)
        assert not fault.matches("store.write", 1)

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(point="x", kind="meteor-strike")
        with pytest.raises(ValueError):
            FaultSpec(point="x", kind="error", after=0)
        with pytest.raises(ValueError):
            FaultSpec(point="x", kind="error", count=0)

    def test_round_trip(self):
        fault = FaultSpec(point="a.b", kind="delay", after=3, count=2, delay=0.5)
        assert FaultSpec.from_dict(fault.to_dict()) == fault


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(point="store.write", kind="partial_write"),
                FaultSpec(point="worker.chunk", kind="crash", exit_code=9),
            ),
            seed=7,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_single_convenience(self):
        plan = FaultPlan.single("queue.persist", "enospc", after=2)
        assert len(plan.faults) == 1
        assert plan.faults[0].after == 2


class TestActivation:
    def test_inert_without_a_plan(self):
        assert chaos.fault_point("store.write") is None
        assert chaos.fired() == []

    def test_install_and_uninstall(self):
        chaos.install_plan(FaultPlan.single("store.write", "error"))
        with pytest.raises(ChaosError):
            chaos.fault_point("store.write")
        assert chaos.fired() == [("store.write", "error")]
        chaos.uninstall_plan()
        assert chaos.fault_point("store.write") is None

    def test_counters_restart_on_reinstall(self):
        plan = FaultPlan.single("p", "error", after=1)
        chaos.install_plan(plan)
        with pytest.raises(ChaosError):
            chaos.fault_point("p")
        assert chaos.fault_point("p") is None  # window passed
        chaos.install_plan(plan)
        with pytest.raises(ChaosError):
            chaos.fault_point("p")  # counters started over

    def test_active_plan_restores_and_records(self):
        outer = FaultPlan.single("a", "error")
        chaos.install_plan(outer)
        with chaos.active_plan(FaultPlan.single("b", "disconnect")) as scope:
            assert chaos.fault_point("a") is None  # outer plan not active
            with pytest.raises(ConnectionError):
                chaos.fault_point("b")
        assert scope.fired == [("b", "disconnect")]  # usable after exit
        with pytest.raises(ChaosError):
            chaos.fault_point("a")  # outer plan restored

    def test_env_activation_is_lazy(self, monkeypatch):
        plan = FaultPlan.single("store.write", "enospc")
        monkeypatch.setenv(PLAN_ENV, plan.to_json())
        chaos.reset()
        with pytest.raises(OSError) as excinfo:
            chaos.fault_point("store.write")
        assert excinfo.value.errno == errno.ENOSPC

    def test_env_plan_from_file(self, monkeypatch, tmp_path):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(FaultPlan.single("q", "error").to_json())
        monkeypatch.setenv(PLAN_ENV, f"@{plan_path}")
        chaos.reset()
        with pytest.raises(ChaosError):
            chaos.fault_point("q")

    def test_broken_env_plan_raises(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "{not json")
        chaos.reset()
        with pytest.raises(ValueError):
            chaos.fault_point("anything")


class TestKinds:
    def test_error_is_oserror(self):
        chaos.install_plan(FaultPlan.single("p", "error"))
        with pytest.raises(OSError):
            chaos.fault_point("p")

    def test_disconnect(self):
        chaos.install_plan(FaultPlan.single("p", "disconnect"))
        with pytest.raises(ConnectionError):
            chaos.fault_point("p")

    def test_delay_sleeps_then_continues(self):
        chaos.install_plan(FaultPlan.single("p", "delay", delay=0.05))
        start = time.monotonic()
        assert chaos.fault_point("p") is None
        assert time.monotonic() - start >= 0.04

    def test_crash_is_gated_by_env(self):
        # Without REPRO_CHAOS_ALLOW_CRASH the process must survive: the
        # crash degrades to a ChaosError instead of os._exit.
        chaos.install_plan(FaultPlan.single("p", "crash"))
        with pytest.raises(ChaosError, match="crash requested"):
            chaos.fault_point("p")

    def test_cooperative_kinds_are_returned(self):
        chaos.install_plan(
            FaultPlan(
                faults=(
                    FaultSpec(point="a", kind="drop"),
                    FaultSpec(point="b", kind="partial_write"),
                    FaultSpec(point="c", kind="corrupt"),
                )
            )
        )
        assert chaos.fault_point("a") == "drop"
        assert chaos.fault_point("b") == "partial_write"
        assert chaos.fault_point("c") == "corrupt"


class TestCorruptBytes:
    def test_flips_exactly_one_bit(self):
        data = bytes(range(64))
        mutated = chaos.corrupt_bytes(data, "store.write")
        assert len(mutated) == len(data)
        diff = [
            (i, a ^ b) for i, (a, b) in enumerate(zip(data, mutated)) if a != b
        ]
        assert len(diff) == 1
        assert bin(diff[0][1]).count("1") == 1  # single-bit flip

    def test_deterministic_in_plan_seed_and_hit(self):
        data = b"x" * 128
        chaos.install_plan(FaultPlan.single("p", "corrupt"), )
        first = chaos.corrupt_bytes(data, "p")
        # Same seed, same hit count: identical flip.
        chaos.install_plan(FaultPlan.single("p", "corrupt"))
        assert chaos.corrupt_bytes(data, "p") == first
        # A different seed picks a different flip (for this data length).
        chaos.install_plan(
            FaultPlan(faults=(FaultSpec(point="p", kind="corrupt"),), seed=99)
        )
        assert chaos.corrupt_bytes(data, "p") != first

    def test_empty_payload_passes_through(self):
        assert chaos.corrupt_bytes(b"", "p") == b""
