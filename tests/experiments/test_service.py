"""ExperimentService: protocol, queue semantics, restart recovery, and the
daemon-vs-serial bit-identity acceptance."""

import json

import pytest

from repro.core.bfa import BitSearchConfig
from repro.dram.geometry import DramGeometry
from repro.experiments import (
    ComparisonSpec,
    DefenseMatrixSpec,
    ExperimentRunner,
    ExperimentService,
    ResultStore,
    ServiceClient,
    ServiceOverloadError,
    ServiceUnavailableError,
)
from repro.utils.resilience import RetryPolicy

SMALL_GEOMETRY = DramGeometry(num_banks=1, rows_per_bank=24, cols_per_row=128)


def _cheap_spec(seed=11):
    """A spec that runs in well under a second (no DNN training)."""
    return DefenseMatrixSpec(geometry=SMALL_GEOMETRY, chip_seed=seed)


def _service(tmp_path, **kwargs):
    return ExperimentService(
        queue_dir=tmp_path / "queue", store_dir=tmp_path / "store", **kwargs
    )


class TestOfflineExecution:
    """The executor core, driven without any socket."""

    def test_submit_process_once_stores_result(self, tmp_path):
        service = _service(tmp_path)
        response = service._dispatch({"op": "submit", "spec": _cheap_spec().to_dict()})
        assert response["ok"] and response["created"]
        job = service.process_once()
        assert job.state == "done"
        assert service.store.names() == [response["name"]]
        assert service.process_once() is None

    def test_malformed_spec_rejected_at_submit(self, tmp_path):
        service = _service(tmp_path)
        response = service._dispatch({"op": "submit", "spec": {"kind": "nope"}})
        assert not response["ok"]
        assert len(service.queue) == 0

    def test_failing_job_is_isolated(self, tmp_path, monkeypatch):
        service = _service(tmp_path)
        service._dispatch({"op": "submit", "spec": _cheap_spec(seed=1).to_dict()})
        service._dispatch({"op": "submit", "spec": _cheap_spec(seed=2).to_dict()})
        calls = []

        def boom_once(spec, save_as=None):
            calls.append(save_as)
            if len(calls) == 1:
                raise RuntimeError("boom")
            return original(spec, save_as=save_as)

        original = service.runner.run
        monkeypatch.setattr(service.runner, "run", boom_once)
        assert service.drain() == 2
        states = [job.state for job in service.queue.jobs()]
        assert states == ["failed", "done"]
        assert "boom" in service.queue.jobs()[0].error

    def test_cancel_via_protocol(self, tmp_path):
        service = _service(tmp_path)
        first = service._dispatch({"op": "submit", "spec": _cheap_spec(seed=1).to_dict()})
        second = service._dispatch({"op": "submit", "spec": _cheap_spec(seed=2).to_dict()})
        assert service._dispatch({"op": "cancel", "job_id": second["job_id"]})["cancelled"]
        service.drain()
        jobs = {job.job_id: job.state for job in service.queue.jobs()}
        assert jobs[first["job_id"]] == "done"
        assert jobs[second["job_id"]] == "cancelled"
        # Only the non-cancelled job produced a result.
        assert len(service.store.names()) == 1


class TestRestartRecovery:
    def test_restart_resumes_pending_jobs_bit_identical_to_serial(self, tmp_path):
        specs = [_cheap_spec(seed=1), _cheap_spec(seed=2)]
        first = _service(tmp_path)
        for index, spec in enumerate(specs):
            first._dispatch({"op": "submit", "spec": spec.to_dict(), "name": f"job{index}"})
        # Daemon dies before running anything; a new daemon on the same
        # directories resumes the queue and loses no work.
        second = _service(tmp_path)
        assert second.drain() == 2
        assert [job.state for job in second.queue.jobs()] == ["done", "done"]

        serial_store = ResultStore(tmp_path / "serial")
        runner = ExperimentRunner(store=serial_store)
        for index, spec in enumerate(specs):
            runner.run(spec, save_as=f"job{index}")
        for index in range(2):
            daemon_env = json.loads(second.store.path_for(f"job{index}").read_text())
            serial_env = json.loads(serial_store.path_for(f"job{index}").read_text())
            assert daemon_env == serial_env

    def test_job_interrupted_mid_run_requeues_exactly_once(self, tmp_path):
        first = _service(tmp_path)
        first._dispatch({"op": "submit", "spec": _cheap_spec().to_dict()})
        claimed = first.queue.claim()  # crash with the job mid-flight

        second = _service(tmp_path)
        assert second.recovery["requeued"] == [claimed.job_id]
        assert second.drain() == 1
        assert second.queue.get(claimed.job_id).state == "done"

        # A job that takes the daemon down twice is failed, not looped.
        second.queue.submit(_cheap_spec(seed=99).to_dict())
        poisoned = second.queue.claim()
        third = _service(tmp_path)
        requeued = third.queue.get(poisoned.job_id)
        assert requeued.state == "pending" and requeued.requeued
        third.queue.claim()
        fourth = _service(tmp_path)
        assert fourth.recovery["failed"] == [poisoned.job_id]
        assert fourth.queue.get(poisoned.job_id).state == "failed"


class TestOverloadProtection:
    def test_submission_past_bound_is_shed_with_retry_after(self, tmp_path):
        service = _service(tmp_path, max_pending=1)
        accepted = service._dispatch({"op": "submit", "spec": _cheap_spec(seed=1).to_dict()})
        shed = service._dispatch({"op": "submit", "spec": _cheap_spec(seed=2).to_dict()})
        assert accepted["ok"]
        assert not shed["ok"] and shed["overloaded"]
        assert shed["retry_after"] >= 0.5
        # Shedding never loses accepted work: the first job still runs.
        assert service.drain() == 1
        assert service.store.names() == [accepted["name"]]

    def test_duplicate_submission_is_not_shed(self, tmp_path):
        service = _service(tmp_path, max_pending=1)
        first = service._dispatch({"op": "submit", "spec": _cheap_spec(seed=1).to_dict()})
        again = service._dispatch({"op": "submit", "spec": _cheap_spec(seed=1).to_dict()})
        assert again["ok"] and not again["created"]
        assert again["job_id"] == first["job_id"]

    def test_retry_after_scales_with_backlog(self, tmp_path):
        service = _service(tmp_path)
        service._avg_job_seconds = 2.0
        for seed in range(3):
            service._dispatch({"op": "submit", "spec": _cheap_spec(seed=seed).to_dict()})
        assert service.retry_after_hint() == pytest.approx(6.0)

    def test_health_reports_queue_and_registry(self, tmp_path):
        service = _service(tmp_path, max_pending=7)
        service._dispatch({"op": "submit", "spec": _cheap_spec(seed=1).to_dict()})
        health = service._dispatch({"op": "health"})["health"]
        assert health["pending"] == 1 and health["max_pending"] == 7
        assert health["queue"]["pending"] == 1
        assert health["active_job"] is None
        assert health["uptime_seconds"] >= 0
        assert set(health["registry"]) >= {"hits", "misses", "entries", "bytes"}

    def test_client_submit_retries_until_capacity(self, tmp_path, monkeypatch):
        client = ServiceClient(host="127.0.0.1", port=1)
        responses = iter([
            {"ok": False, "error": "queue full", "overloaded": True, "retry_after": 0.7},
            {"ok": False, "error": "queue full", "overloaded": True, "retry_after": 0.7},
            {"ok": True, "job_id": "j", "name": "n", "state": "pending", "created": True},
        ])

        def fake_call(self, request):
            response = next(responses)
            if not response.get("ok"):
                raise ServiceOverloadError(response["error"], response["retry_after"])
            return response

        monkeypatch.setattr(ServiceClient, "_call", fake_call)
        sleeps = []
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.0)
        response = client.submit(
            _cheap_spec().to_dict(), retries=policy, sleep=sleeps.append
        )
        assert response["created"]
        # Backoff honours the daemon's hint when it exceeds the policy delay.
        assert len(sleeps) == 2 and all(delay >= 0.7 for delay in sleeps)

    def test_client_submit_without_retries_raises(self, tmp_path, monkeypatch):
        client = ServiceClient(host="127.0.0.1", port=1)

        def always_shed(self, request):
            raise ServiceOverloadError("queue full", retry_after=1.5)

        monkeypatch.setattr(ServiceClient, "_call", always_shed)
        with pytest.raises(ServiceOverloadError) as excinfo:
            client.submit(_cheap_spec().to_dict())
        assert excinfo.value.retry_after == 1.5


class TestPrioritiesAndDeadlines:
    def test_priority_orders_execution(self, tmp_path):
        service = _service(tmp_path)
        low = service._dispatch({"op": "submit", "spec": _cheap_spec(seed=1).to_dict()})
        high = service._dispatch({
            "op": "submit", "spec": _cheap_spec(seed=2).to_dict(), "priority": 5,
        })
        first = service.process_once()
        assert first.job_id == high["job_id"]
        assert service.process_once().job_id == low["job_id"]

    def test_expired_deadline_fails_before_start(self, tmp_path):
        service = _service(tmp_path)
        response = service._dispatch({
            "op": "submit", "spec": _cheap_spec(seed=1).to_dict(), "deadline": -1.0,
        })
        assert service.process_once() is None  # nothing runnable remained
        job = service.queue.get(response["job_id"])
        assert job.state == "failed"
        assert "deadline expired" in job.error
        assert service.store.names() == []

    def test_deadline_budget_reaches_the_backend(self, tmp_path, monkeypatch):
        service = _service(tmp_path)
        service._dispatch({
            "op": "submit", "spec": _cheap_spec(seed=1).to_dict(), "deadline": 60.0,
        })
        seen = {}
        original = service.runner.run

        def capture(spec, save_as=None):
            seen["deadline"] = service.checkpointed.deadline
            return original(spec, save_as=save_as)

        monkeypatch.setattr(service.runner, "run", capture)
        job = service.process_once()
        assert job.state == "done"
        assert seen["deadline"] is not None
        assert 0 < seen["deadline"].remaining() <= 60.0
        assert service.checkpointed.deadline is None  # cleared after the job


class TestWatchdog:
    def test_watchdog_fails_wedged_job(self, tmp_path, monkeypatch):
        import threading

        service = _service(tmp_path, watchdog_timeout=0.1)
        service._dispatch({"op": "submit", "spec": _cheap_spec(seed=1).to_dict()})
        release = threading.Event()
        monkeypatch.setattr(
            service.runner, "run", lambda spec, save_as=None: release.wait(10.0)
        )
        job = service.process_once()
        assert job.state == "failed"
        assert "WatchdogTimeout" in job.error and "watchdog" in job.error
        release.set()  # let the wedged daemon thread finish

    def test_watchdog_passes_healthy_jobs(self, tmp_path):
        service = _service(tmp_path, watchdog_timeout=60.0)
        service._dispatch({"op": "submit", "spec": _cheap_spec(seed=1).to_dict()})
        job = service.process_once()
        assert job.state == "done"
        assert len(service.store.names()) == 1

    def test_watched_job_errors_propagate(self, tmp_path, monkeypatch):
        service = _service(tmp_path, watchdog_timeout=60.0)
        service._dispatch({"op": "submit", "spec": _cheap_spec(seed=1).to_dict()})

        def boom(spec, save_as=None):
            raise RuntimeError("boom")

        monkeypatch.setattr(service.runner, "run", boom)
        job = service.process_once()
        assert job.state == "failed" and "boom" in job.error

    def test_abandoned_slow_job_cannot_touch_the_next_jobs_checkpoint(
        self, tmp_path, monkeypatch
    ):
        """A watchdog-abandoned thread that is slow — not dead — must keep
        its own job's checkpoint binding: it may never observe a nulled
        checkpoint (AttributeError) or the *next* job's checkpoint
        directory, which would let it smuggle foreign chunk outputs into
        that job's resume."""
        import threading

        service = _service(tmp_path, watchdog_timeout=0.1)
        release = threading.Event()
        observed = {}
        original = service.runner.run

        def run(spec, save_as=None):
            if save_as == "slow":
                release.wait(10.0)
                # Recorded from the abandoned worker thread, after the
                # daemon has already claimed and finished the next job.
                observed["checkpoint"] = service.checkpointed.checkpoint
            return original(spec, save_as=save_as)

        monkeypatch.setattr(service.runner, "run", run)
        service._dispatch({
            "op": "submit", "spec": _cheap_spec(seed=1).to_dict(), "name": "slow",
        })
        slow = service.process_once()
        assert slow.state == "failed" and "WatchdogTimeout" in slow.error
        assert service.abandoned_workers() == 1
        service.watchdog_timeout = 60.0  # the next job is healthy
        service._dispatch({
            "op": "submit", "spec": _cheap_spec(seed=2).to_dict(), "name": "fast",
        })
        fast = service.process_once()
        assert fast.state == "done"
        release.set()
        (worker,) = service._abandoned
        worker.join(timeout=10.0)
        assert not worker.is_alive()
        assert observed["checkpoint"] is not None
        assert observed["checkpoint"].directory == (
            service.checkpoint_root / slow.job_id
        )
        assert observed["checkpoint"].owner == slow.job_id
        assert service.abandoned_workers() == 0
        # The finished job's result is intact and its checkpoints cleared.
        assert "fast" in service.store.names()
        assert not (service.checkpoint_root / fast.job_id).exists()


class TestStaleEndpoint:
    def test_missing_endpoint_raises_service_unavailable(self, tmp_path):
        with pytest.raises(ServiceUnavailableError, match="is the daemon running"):
            ServiceClient(queue_dir=tmp_path)

    def test_dead_pid_endpoint_detected_without_connecting(self, tmp_path):
        import subprocess

        probe = subprocess.Popen(["sleep", "0"])
        probe.wait()  # this pid is now dead (and very unlikely to be reused)
        (tmp_path / "endpoint.json").write_text(json.dumps({
            "host": "127.0.0.1", "port": 1, "pid": probe.pid,
        }))
        with pytest.raises(ServiceUnavailableError, match="stale"):
            ServiceClient(queue_dir=tmp_path)

    def test_endpoint_without_pid_is_trusted(self, tmp_path):
        # Legacy endpoint files (pre-liveness) carry no pid: accept them.
        (tmp_path / "endpoint.json").write_text(json.dumps({
            "host": "127.0.0.1", "port": 7421,
        }))
        client = ServiceClient(queue_dir=tmp_path)
        assert client.port == 7421


class TestSocketProtocol:
    @pytest.fixture
    def running(self, tmp_path):
        service = _service(tmp_path, port=0)
        service.start()
        try:
            yield service, ServiceClient(queue_dir=tmp_path / "queue")
        finally:
            service.stop()

    def test_ping_and_endpoint_discovery(self, running):
        service, client = running
        response = client.ping()
        assert response["ok"]
        assert service.endpoint_path.is_file()

    def test_submit_wait_result_roundtrip(self, running):
        service, client = running
        spec = _cheap_spec()
        response = client.submit(spec.to_dict(), name="matrix")
        job = client.wait(response["job_id"], timeout=60)
        assert job["state"] == "done"
        assert client.results() == ["matrix"]
        envelope = client.result("matrix")
        assert envelope["kind"] == "defense_matrix"
        # Duplicate submission after completion deduplicates.
        again = client.submit(spec.to_dict())
        assert not again["created"] and again["job_id"] == response["job_id"]

    def test_status_unknown_job_and_unknown_op(self, running):
        _, client = running
        with pytest.raises(RuntimeError, match="unknown job"):
            client.status("bogus")
        with pytest.raises(RuntimeError, match="unknown op"):
            client._call({"op": "frobnicate"})

    def test_jobs_and_registry_stats(self, running):
        service, client = running
        client.submit(_cheap_spec().to_dict())
        assert len(client.jobs()) == 1
        stats = client.registry_stats()
        assert set(stats) >= {"hits", "misses", "evictions", "entries", "bytes"}

    def test_stop_removes_endpoint_file(self, tmp_path):
        service = _service(tmp_path, port=0)
        service.start()
        assert service.endpoint_path.is_file()
        service.stop()
        assert not service.endpoint_path.is_file()
        service.stop()  # idempotent


@pytest.mark.slow
class TestDaemonBitIdentity:
    """Acceptance: daemon + multi-worker backend + warm registry == serial."""

    def test_daemon_process_backend_warm_registry_matches_serial(self, tmp_path):
        spec = ComparisonSpec(
            model_keys=("resnet20",),
            repetitions=2,
            eval_samples=32,
            search=BitSearchConfig(max_flips=8, top_k_layers=2, eval_batch_size=32),
            training_epochs=1,
            seed=123,
            profile_seed=123,
        )
        service = _service(tmp_path, backend="process", max_workers=2, port=0)
        service.start()
        try:
            client = ServiceClient(queue_dir=tmp_path / "queue")
            response = client.submit(spec.to_dict(), name="cmp")
            job = client.wait(response["job_id"], timeout=900)
            assert job["state"] == "done", job.get("error")
            daemon_env = client.result("cmp")
            # The victim landed in the warm registry for later jobs.
            assert client.registry_stats()["entries"] == 1
        finally:
            service.stop()

        serial_store = ResultStore(tmp_path / "serial")
        ExperimentRunner(store=serial_store).run(spec, save_as="cmp")
        serial_env = json.loads(serial_store.path_for("cmp").read_text())
        assert daemon_env["payload"] == serial_env["payload"]
        assert daemon_env["spec"] == serial_env["spec"]
