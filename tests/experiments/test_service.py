"""ExperimentService: protocol, queue semantics, restart recovery, and the
daemon-vs-serial bit-identity acceptance."""

import json

import pytest

from repro.core.bfa import BitSearchConfig
from repro.dram.geometry import DramGeometry
from repro.experiments import (
    ComparisonSpec,
    DefenseMatrixSpec,
    ExperimentRunner,
    ExperimentService,
    ResultStore,
    ServiceClient,
)

SMALL_GEOMETRY = DramGeometry(num_banks=1, rows_per_bank=24, cols_per_row=128)


def _cheap_spec(seed=11):
    """A spec that runs in well under a second (no DNN training)."""
    return DefenseMatrixSpec(geometry=SMALL_GEOMETRY, chip_seed=seed)


def _service(tmp_path, **kwargs):
    return ExperimentService(
        queue_dir=tmp_path / "queue", store_dir=tmp_path / "store", **kwargs
    )


class TestOfflineExecution:
    """The executor core, driven without any socket."""

    def test_submit_process_once_stores_result(self, tmp_path):
        service = _service(tmp_path)
        response = service._dispatch({"op": "submit", "spec": _cheap_spec().to_dict()})
        assert response["ok"] and response["created"]
        job = service.process_once()
        assert job.state == "done"
        assert service.store.names() == [response["name"]]
        assert service.process_once() is None

    def test_malformed_spec_rejected_at_submit(self, tmp_path):
        service = _service(tmp_path)
        response = service._dispatch({"op": "submit", "spec": {"kind": "nope"}})
        assert not response["ok"]
        assert len(service.queue) == 0

    def test_failing_job_is_isolated(self, tmp_path, monkeypatch):
        service = _service(tmp_path)
        service._dispatch({"op": "submit", "spec": _cheap_spec(seed=1).to_dict()})
        service._dispatch({"op": "submit", "spec": _cheap_spec(seed=2).to_dict()})
        calls = []

        def boom_once(spec, save_as=None):
            calls.append(save_as)
            if len(calls) == 1:
                raise RuntimeError("boom")
            return original(spec, save_as=save_as)

        original = service.runner.run
        monkeypatch.setattr(service.runner, "run", boom_once)
        assert service.drain() == 2
        states = [job.state for job in service.queue.jobs()]
        assert states == ["failed", "done"]
        assert "boom" in service.queue.jobs()[0].error

    def test_cancel_via_protocol(self, tmp_path):
        service = _service(tmp_path)
        first = service._dispatch({"op": "submit", "spec": _cheap_spec(seed=1).to_dict()})
        second = service._dispatch({"op": "submit", "spec": _cheap_spec(seed=2).to_dict()})
        assert service._dispatch({"op": "cancel", "job_id": second["job_id"]})["cancelled"]
        service.drain()
        jobs = {job.job_id: job.state for job in service.queue.jobs()}
        assert jobs[first["job_id"]] == "done"
        assert jobs[second["job_id"]] == "cancelled"
        # Only the non-cancelled job produced a result.
        assert len(service.store.names()) == 1


class TestRestartRecovery:
    def test_restart_resumes_pending_jobs_bit_identical_to_serial(self, tmp_path):
        specs = [_cheap_spec(seed=1), _cheap_spec(seed=2)]
        first = _service(tmp_path)
        for index, spec in enumerate(specs):
            first._dispatch({"op": "submit", "spec": spec.to_dict(), "name": f"job{index}"})
        # Daemon dies before running anything; a new daemon on the same
        # directories resumes the queue and loses no work.
        second = _service(tmp_path)
        assert second.drain() == 2
        assert [job.state for job in second.queue.jobs()] == ["done", "done"]

        serial_store = ResultStore(tmp_path / "serial")
        runner = ExperimentRunner(store=serial_store)
        for index, spec in enumerate(specs):
            runner.run(spec, save_as=f"job{index}")
        for index in range(2):
            daemon_env = json.loads(second.store.path_for(f"job{index}").read_text())
            serial_env = json.loads(serial_store.path_for(f"job{index}").read_text())
            assert daemon_env == serial_env

    def test_job_interrupted_mid_run_requeues_exactly_once(self, tmp_path):
        first = _service(tmp_path)
        first._dispatch({"op": "submit", "spec": _cheap_spec().to_dict()})
        claimed = first.queue.claim()  # crash with the job mid-flight

        second = _service(tmp_path)
        assert second.recovery["requeued"] == [claimed.job_id]
        assert second.drain() == 1
        assert second.queue.get(claimed.job_id).state == "done"

        # A job that takes the daemon down twice is failed, not looped.
        second.queue.submit(_cheap_spec(seed=99).to_dict())
        poisoned = second.queue.claim()
        third = _service(tmp_path)
        requeued = third.queue.get(poisoned.job_id)
        assert requeued.state == "pending" and requeued.requeued
        third.queue.claim()
        fourth = _service(tmp_path)
        assert fourth.recovery["failed"] == [poisoned.job_id]
        assert fourth.queue.get(poisoned.job_id).state == "failed"


class TestSocketProtocol:
    @pytest.fixture
    def running(self, tmp_path):
        service = _service(tmp_path, port=0)
        service.start()
        try:
            yield service, ServiceClient(queue_dir=tmp_path / "queue")
        finally:
            service.stop()

    def test_ping_and_endpoint_discovery(self, running):
        service, client = running
        response = client.ping()
        assert response["ok"]
        assert service.endpoint_path.is_file()

    def test_submit_wait_result_roundtrip(self, running):
        service, client = running
        spec = _cheap_spec()
        response = client.submit(spec.to_dict(), name="matrix")
        job = client.wait(response["job_id"], timeout=60)
        assert job["state"] == "done"
        assert client.results() == ["matrix"]
        envelope = client.result("matrix")
        assert envelope["kind"] == "defense_matrix"
        # Duplicate submission after completion deduplicates.
        again = client.submit(spec.to_dict())
        assert not again["created"] and again["job_id"] == response["job_id"]

    def test_status_unknown_job_and_unknown_op(self, running):
        _, client = running
        with pytest.raises(RuntimeError, match="unknown job"):
            client.status("bogus")
        with pytest.raises(RuntimeError, match="unknown op"):
            client._call({"op": "frobnicate"})

    def test_jobs_and_registry_stats(self, running):
        service, client = running
        client.submit(_cheap_spec().to_dict())
        assert len(client.jobs()) == 1
        stats = client.registry_stats()
        assert set(stats) >= {"hits", "misses", "evictions", "entries", "bytes"}

    def test_stop_removes_endpoint_file(self, tmp_path):
        service = _service(tmp_path, port=0)
        service.start()
        assert service.endpoint_path.is_file()
        service.stop()
        assert not service.endpoint_path.is_file()
        service.stop()  # idempotent


@pytest.mark.slow
class TestDaemonBitIdentity:
    """Acceptance: daemon + multi-worker backend + warm registry == serial."""

    def test_daemon_process_backend_warm_registry_matches_serial(self, tmp_path):
        spec = ComparisonSpec(
            model_keys=("resnet20",),
            repetitions=2,
            eval_samples=32,
            search=BitSearchConfig(max_flips=8, top_k_layers=2, eval_batch_size=32),
            training_epochs=1,
            seed=123,
            profile_seed=123,
        )
        service = _service(tmp_path, backend="process", max_workers=2, port=0)
        service.start()
        try:
            client = ServiceClient(queue_dir=tmp_path / "queue")
            response = client.submit(spec.to_dict(), name="cmp")
            job = client.wait(response["job_id"], timeout=900)
            assert job["state"] == "done", job.get("error")
            daemon_env = client.result("cmp")
            # The victim landed in the warm registry for later jobs.
            assert client.registry_stats()["entries"] == 1
        finally:
            service.stop()

        serial_store = ResultStore(tmp_path / "serial")
        ExperimentRunner(store=serial_store).run(spec, save_as="cmp")
        serial_env = json.loads(serial_store.path_for("cmp").read_text())
        assert daemon_env["payload"] == serial_env["payload"]
        assert daemon_env["spec"] == serial_env["spec"]
