"""Chunk checkpointing: stable boundaries, atomic saves, resumed execution."""

import pickle

import pytest

from repro.dram.geometry import DramGeometry
from repro.experiments import (
    CheckpointedBackend,
    ChunkCheckpoint,
    DefenseMatrixSpec,
    ExperimentContext,
    SerialBackend,
    checkpoint_chunks,
)
from repro.experiments.checkpoint import ChaosWriteError
from repro.testing import chaos
from repro.testing.chaos import FaultPlan

SMALL_GEOMETRY = DramGeometry(num_banks=1, rows_per_bank=24, cols_per_row=128)


def _cheap_spec(seed=11):
    return DefenseMatrixSpec(geometry=SMALL_GEOMETRY, chip_seed=seed)


class TestCheckpointChunks:
    def test_boundaries_depend_only_on_unit_count(self):
        units = list(range(40))
        assert checkpoint_chunks(units) == checkpoint_chunks(list(units))
        flat = [u for chunk in checkpoint_chunks(units) for u in chunk]
        assert flat == units

    def test_explicit_chunk_size(self):
        chunks = checkpoint_chunks(list(range(10)), chunk_size=4)
        assert [len(c) for c in chunks] == [4, 4, 2]
        with pytest.raises(ValueError):
            checkpoint_chunks(list(range(10)), chunk_size=0)

    def test_small_unit_counts_get_single_unit_chunks(self):
        assert [len(c) for c in checkpoint_chunks(list(range(5)))] == [1] * 5


class TestChunkCheckpoint:
    def test_save_load_round_trip(self, tmp_path):
        checkpoint = ChunkCheckpoint(tmp_path / "job")
        checkpoint.save_chunk(0, ["a", "b"])
        checkpoint.save_chunk(3, [{"x": 1}])
        assert checkpoint.load() == {0: ["a", "b"], 3: [{"x": 1}]}

    def test_truncated_file_is_skipped(self, tmp_path):
        checkpoint = ChunkCheckpoint(tmp_path / "job")
        checkpoint.save_chunk(0, ["ok"])
        blob = pickle.dumps(["torn"], protocol=pickle.HIGHEST_PROTOCOL)
        checkpoint.path_for(1).write_bytes(blob[: len(blob) // 2])
        assert checkpoint.load() == {0: ["ok"]}

    def test_clear_removes_everything(self, tmp_path):
        checkpoint = ChunkCheckpoint(tmp_path / "job")
        checkpoint.save_chunk(0, ["x"])
        checkpoint.clear()
        assert checkpoint.load() == {}
        assert not checkpoint.directory.exists()

    def test_foreign_owner_chunks_are_never_resumed(self, tmp_path):
        # A chunk stamped by another job (however it landed in this
        # directory) must rerun, not smuggle foreign outputs in.
        ChunkCheckpoint(tmp_path / "job", owner="job-a").save_chunk(0, ["a's"])
        mine = ChunkCheckpoint(tmp_path / "job", owner="job-b")
        assert mine.load() == {}
        mine.save_chunk(0, ["b's"])
        assert mine.load() == {0: ["b's"]}

    def test_untagged_checkpoint_accepts_any_owner(self, tmp_path):
        ChunkCheckpoint(tmp_path / "job", owner="job-a").save_chunk(0, ["x"])
        assert ChunkCheckpoint(tmp_path / "job").load() == {0: ["x"]}

    def test_legacy_bare_pickle_chunks_still_load(self, tmp_path):
        checkpoint = ChunkCheckpoint(tmp_path / "job", owner="job-a")
        checkpoint.directory.mkdir(parents=True)
        checkpoint.path_for(0).write_bytes(
            pickle.dumps(["legacy"], protocol=pickle.HIGHEST_PROTOCOL)
        )
        assert checkpoint.load() == {0: ["legacy"]}

    def test_injected_partial_write_never_corrupts_a_checkpoint(self, tmp_path):
        checkpoint = ChunkCheckpoint(tmp_path / "job")
        checkpoint.save_chunk(0, ["first"])
        with chaos.active_plan(FaultPlan.single("checkpoint.write", "partial_write")):
            with pytest.raises(ChaosWriteError):
                checkpoint.save_chunk(0, ["second"])
        # The torn write hit the temp file only; the real file still holds
        # the previous complete outputs.
        assert checkpoint.load() == {0: ["first"]}


class _CountingBackend(SerialBackend):
    """Serial backend that records how many units each call executed."""

    def __init__(self):
        self.calls = []

    def run_units(self, spec, units, context):
        self.calls.append(len(units))
        return super().run_units(spec, units, context)


class TestCheckpointedBackend:
    def test_passthrough_without_checkpoint(self):
        inner = _CountingBackend()
        backend = CheckpointedBackend(inner)
        spec = _cheap_spec()
        units = spec.work_units()
        outputs = backend.run_units(spec, units, ExperimentContext())
        assert len(outputs) == len(units)
        assert inner.calls == [len(units)]  # one inner call, no chunking

    def test_matches_serial_and_is_durable(self, tmp_path):
        spec = _cheap_spec()
        units = spec.work_units()
        expected = SerialBackend().run_units(spec, units, ExperimentContext())

        checkpoint = ChunkCheckpoint(tmp_path / "job")
        backend = CheckpointedBackend(SerialBackend(), checkpoint=checkpoint)
        outputs = backend.run_units(spec, units, ExperimentContext())
        assert repr(outputs) == repr(expected)
        assert backend.last_resumed == 0
        assert backend.last_executed == len(checkpoint_chunks(units))
        assert len(checkpoint.load()) == len(checkpoint_chunks(units))

    def test_resume_skips_completed_chunks(self, tmp_path):
        spec = _cheap_spec()
        units = spec.work_units()
        checkpoint = ChunkCheckpoint(tmp_path / "job")

        # First attempt "dies" after two chunks: simulate by running only
        # those chunks through the checkpoint directly.
        chunks = checkpoint_chunks(units)
        context = ExperimentContext()
        for index in (0, 1):
            checkpoint.save_chunk(
                index, SerialBackend().run_units(spec, chunks[index], context)
            )

        inner = _CountingBackend()
        backend = CheckpointedBackend(inner, checkpoint=checkpoint)
        outputs = backend.run_units(spec, units, ExperimentContext())
        assert backend.last_resumed == 2
        assert backend.last_executed == len(chunks) - 2
        assert sum(inner.calls) == len(units) - len(chunks[0]) - len(chunks[1])
        expected = SerialBackend().run_units(spec, units, ExperimentContext())
        assert repr(outputs) == repr(expected)

    def test_stale_checkpoints_are_discarded(self, tmp_path):
        spec = _cheap_spec()
        units = spec.work_units()
        checkpoint = ChunkCheckpoint(tmp_path / "job")
        # A checkpoint from a different unit decomposition: wrong length.
        checkpoint.save_chunk(0, ["bogus", "bogus"])
        checkpoint.save_chunk(999, ["beyond the chunk map"])
        backend = CheckpointedBackend(SerialBackend(), checkpoint=checkpoint)
        outputs = backend.run_units(spec, units, ExperimentContext())
        assert backend.last_resumed == 0  # nothing stale was trusted
        expected = SerialBackend().run_units(spec, units, ExperimentContext())
        assert repr(outputs) == repr(expected)

    def test_empty_units(self, tmp_path):
        backend = CheckpointedBackend(
            SerialBackend(), checkpoint=ChunkCheckpoint(tmp_path / "job")
        )
        assert backend.run_units(_cheap_spec(), [], ExperimentContext()) == []

    def test_checkpoint_and_deadline_bindings_are_thread_local(self, tmp_path):
        import threading

        backend = CheckpointedBackend(SerialBackend())
        backend.checkpoint = ChunkCheckpoint(tmp_path / "mine")
        seen = {}

        def probe():
            seen["checkpoint"] = backend.checkpoint  # unbound on this thread
            backend.checkpoint = ChunkCheckpoint(tmp_path / "other")

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
        assert seen["checkpoint"] is None
        # The other thread's assignment never leaks into this thread.
        assert backend.checkpoint.directory == tmp_path / "mine"
