"""Runner backends: serial/parallel equivalence and determinism."""

import numpy as np
import pytest

from repro.core.bfa import BitSearchConfig
from repro.core.objective import ObjectiveConfig
from repro.dram.geometry import DramGeometry
from repro.experiments import (
    ComparisonSpec,
    DefenseMatrixSpec,
    ExperimentRunner,
    FlipSweepSpec,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
)

SMALL_GEOMETRY = DramGeometry(num_banks=1, rows_per_bank=32, cols_per_row=256)


def _tiny_comparison_spec() -> ComparisonSpec:
    return ComparisonSpec(
        model_keys=("resnet20",),
        repetitions=2,
        eval_samples=32,
        search=BitSearchConfig(max_flips=8, top_k_layers=2, eval_batch_size=32),
        training_epochs=1,
        seed=123,
        profile_seed=123,
    )


class TestBackendFactory:
    def test_make_backend(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        backend = make_backend("process", max_workers=2)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.max_workers == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")


class TestSerialRunner:
    def test_defense_matrix_payload_shape(self):
        spec = DefenseMatrixSpec(geometry=SMALL_GEOMETRY)
        result = ExperimentRunner().run(spec)
        assert result.kind == "defense_matrix"
        assert set(result.payload) == {config.name for config in spec.defenses}
        for row in result.payload.values():
            assert set(row) == {"rowhammer", "rowpress"}

    def test_seeded_rerun_is_identical(self):
        spec = FlipSweepSpec(
            geometry=SMALL_GEOMETRY,
            hammer_counts=(50_000, 200_000),
            open_cycles=(5_000_000, 20_000_000),
            max_rows_per_bank=4,
        )
        runner = ExperimentRunner()
        first = runner.run(spec).payload
        second = runner.run(spec).payload
        assert np.array_equal(first.rowhammer.flips, second.rowhammer.flips)
        assert np.array_equal(first.rowpress.flips, second.rowpress.flips)


@pytest.mark.slow
class TestParallelDeterminism:
    def test_parallel_equals_serial_for_flip_sweep(self):
        spec = FlipSweepSpec(
            geometry=SMALL_GEOMETRY,
            hammer_counts=(50_000, 200_000),
            open_cycles=(5_000_000, 20_000_000),
            max_rows_per_bank=4,
        )
        serial = ExperimentRunner(backend=SerialBackend()).run(spec).payload
        parallel = ExperimentRunner(backend=ProcessPoolBackend(max_workers=2)).run(spec).payload
        assert np.array_equal(serial.rowhammer.flips, parallel.rowhammer.flips)
        assert np.array_equal(serial.rowpress.flips, parallel.rowpress.flips)

    def test_parallel_equals_serial_for_attack_results(self):
        """The headline contract: same seeds => identical AttackResults."""
        spec = _tiny_comparison_spec()
        serial_runner = ExperimentRunner(backend=SerialBackend())
        serial = serial_runner.run(spec).payload
        parallel = ExperimentRunner(backend=ProcessPoolBackend(max_workers=2)).run(spec).payload

        assert len(serial) == len(parallel) == 1
        a, b = serial[0], parallel[0]
        assert a.clean_accuracy == b.clean_accuracy
        # AttackResult equality is field-wise: curves, events, flip counts.
        assert a.rowhammer.results == b.rowhammer.results
        assert a.rowpress.results == b.rowpress.results
        assert a == b
        # The serial context trained the victim exactly once for all units.
        assert serial_runner.context.victims.stats()["misses"] == 1
        assert serial_runner.context.victims.stats()["hits"] >= 4

    def test_parallel_equals_serial_for_targeted_quantized_spec(self):
        """The new scenario families honour the same determinism contract."""
        spec = ComparisonSpec(
            model_keys=("resnet20",),
            repetitions=1,
            eval_samples=32,
            search=BitSearchConfig(max_flips=6, top_k_layers=2, eval_batch_size=32),
            training_epochs=1,
            seed=321,
            profile_seed=321,
            objective=ObjectiveConfig(
                "targeted", params={"source_class": 0, "target_class": 1}
            ),
            victim_precision="int4",
        )
        serial = ExperimentRunner(backend=SerialBackend()).run(spec).payload
        parallel = ExperimentRunner(backend=ProcessPoolBackend(max_workers=2)).run(spec).payload
        a, b = serial[0], parallel[0]
        assert a.rowhammer.results == b.rowhammer.results
        assert a.rowpress.results == b.rowpress.results
        for result in a.rowhammer.results + a.rowpress.results:
            assert result.objective_kind == "targeted"
            assert result.attack_success_rate is not None
