"""Runner backends: serial/parallel equivalence, determinism and the
shared-memory victim-shipping lifecycle."""

import glob
import multiprocessing
import os

import numpy as np
import pytest

from repro.core.bfa import BitSearchConfig
from repro.core.objective import ObjectiveConfig
from repro.dram.geometry import DramGeometry
from repro.experiments import (
    ComparisonSpec,
    DefenseMatrixSpec,
    ExperimentRunner,
    FlipSweepSpec,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    make_backend,
)
from repro.experiments.shared import (
    SEGMENT_PREFIX,
    attach_state,
    export_state,
    export_victim,
)

SMALL_GEOMETRY = DramGeometry(num_banks=1, rows_per_bank=32, cols_per_row=256)


def _segments():
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


def _tiny_comparison_spec() -> ComparisonSpec:
    return ComparisonSpec(
        model_keys=("resnet20",),
        repetitions=2,
        eval_samples=32,
        search=BitSearchConfig(max_flips=8, top_k_layers=2, eval_batch_size=32),
        training_epochs=1,
        seed=123,
        profile_seed=123,
    )


class TestBackendFactory:
    def test_make_backend(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        backend = make_backend("process", max_workers=2)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.max_workers == 2
        threaded = make_backend("thread", max_workers=3)
        assert isinstance(threaded, ThreadPoolBackend)
        assert threaded.max_workers == 3

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")


def _attach_and_crash(manifest):
    """Child-process body: attach the segment, then die without cleanup."""
    handle = attach_state(manifest)
    assert handle.arrays["weight"].shape == (4, 3)
    os._exit(17)  # skips atexit/finally — simulates a worker crash


class TestSharedMemoryLifecycle:
    def test_export_attach_round_trip_zero_copy(self):
        state = {
            "weight": np.arange(12, dtype=np.float64).reshape(4, 3),
            "bias": np.full(5, 2.5),
            "running": np.arange(3, dtype=np.float64),
        }
        handle, manifest = export_state(state)
        try:
            attached = attach_state(manifest)
            for key, value in state.items():
                assert np.array_equal(attached.arrays[key], value)
                # Zero-copy: the view aliases the shared pages, read-only.
                assert not attached.arrays[key].flags.writeable
                assert not attached.arrays[key].flags.owndata
            attached.close()
        finally:
            handle.unlink()
        assert not _segments()

    def test_double_detach_and_double_unlink_are_safe(self):
        handle, manifest = export_state({"weight": np.zeros(3)})
        attached = attach_state(manifest)
        attached.close()
        attached.close()  # double detach: no-op
        handle.unlink()
        handle.unlink()  # segment already gone: tolerated
        assert not _segments()

    def test_worker_crash_leaves_parent_in_control(self):
        """A crashed attacher never strands or destroys the segment."""
        state = {"weight": np.arange(12, dtype=np.float64).reshape(4, 3)}
        handle, manifest = export_state(state)
        try:
            process = multiprocessing.get_context("fork").Process(
                target=_attach_and_crash, args=(manifest,)
            )
            process.start()
            process.join(timeout=30)
            assert process.exitcode == 17
            # The parent can still serve new attachments after the crash...
            survivor = attach_state(manifest)
            assert np.array_equal(survivor.arrays["weight"], state["weight"])
            survivor.close()
        finally:
            # ...and unlinking releases the segment for good.
            handle.unlink()
        assert not _segments()

    def test_export_victim_manifest_carries_cache_key(self):
        handle, manifest = export_victim("resnet20", 7, 3, {"weight": np.ones(2)})
        try:
            assert (manifest.model_key, manifest.seed, manifest.training_epochs) == (
                "resnet20", 7, 3,
            )
            assert manifest.state.shm_name.startswith(SEGMENT_PREFIX)
        finally:
            handle.unlink()


class TestThreadBackendQuick:
    def test_thread_equals_serial_for_flip_sweep(self):
        spec = FlipSweepSpec(
            geometry=SMALL_GEOMETRY,
            hammer_counts=(50_000, 200_000),
            open_cycles=(5_000_000, 20_000_000),
            max_rows_per_bank=4,
        )
        serial = ExperimentRunner(backend=SerialBackend()).run(spec).payload
        threaded = ExperimentRunner(backend=ThreadPoolBackend(max_workers=3)).run(spec).payload
        assert np.array_equal(serial.rowhammer.flips, threaded.rowhammer.flips)
        assert np.array_equal(serial.rowpress.flips, threaded.rowpress.flips)

    def test_chunking_preserves_unit_order(self):
        spec = DefenseMatrixSpec(geometry=SMALL_GEOMETRY)
        serial = ExperimentRunner().run(spec).payload
        chunked = ExperimentRunner(
            backend=ThreadPoolBackend(max_workers=2, chunk_size=3)
        ).run(spec).payload
        assert set(chunked) == set(serial)
        for name, row in serial.items():
            for mechanism, outcome in row.items():
                assert chunked[name][mechanism].flips_with_defense == outcome.flips_with_defense
                assert chunked[name][mechanism].mitigated == outcome.mitigated


class TestSerialRunner:
    def test_defense_matrix_payload_shape(self):
        spec = DefenseMatrixSpec(geometry=SMALL_GEOMETRY)
        result = ExperimentRunner().run(spec)
        assert result.kind == "defense_matrix"
        assert set(result.payload) == {config.name for config in spec.defenses}
        for row in result.payload.values():
            assert set(row) == {"rowhammer", "rowpress"}

    def test_seeded_rerun_is_identical(self):
        spec = FlipSweepSpec(
            geometry=SMALL_GEOMETRY,
            hammer_counts=(50_000, 200_000),
            open_cycles=(5_000_000, 20_000_000),
            max_rows_per_bank=4,
        )
        runner = ExperimentRunner()
        first = runner.run(spec).payload
        second = runner.run(spec).payload
        assert np.array_equal(first.rowhammer.flips, second.rowhammer.flips)
        assert np.array_equal(first.rowpress.flips, second.rowpress.flips)


@pytest.mark.slow
class TestParallelDeterminism:
    def test_parallel_equals_serial_for_flip_sweep(self):
        spec = FlipSweepSpec(
            geometry=SMALL_GEOMETRY,
            hammer_counts=(50_000, 200_000),
            open_cycles=(5_000_000, 20_000_000),
            max_rows_per_bank=4,
        )
        serial = ExperimentRunner(backend=SerialBackend()).run(spec).payload
        parallel = ExperimentRunner(backend=ProcessPoolBackend(max_workers=2)).run(spec).payload
        assert np.array_equal(serial.rowhammer.flips, parallel.rowhammer.flips)
        assert np.array_equal(serial.rowpress.flips, parallel.rowpress.flips)

    def test_parallel_equals_serial_for_attack_results(self):
        """The headline contract: same seeds => identical AttackResults."""
        spec = _tiny_comparison_spec()
        serial_runner = ExperimentRunner(backend=SerialBackend())
        serial = serial_runner.run(spec).payload
        parallel = ExperimentRunner(backend=ProcessPoolBackend(max_workers=2)).run(spec).payload

        assert len(serial) == len(parallel) == 1
        a, b = serial[0], parallel[0]
        assert a.clean_accuracy == b.clean_accuracy
        # AttackResult equality is field-wise: curves, events, flip counts.
        assert a.rowhammer.results == b.rowhammer.results
        assert a.rowpress.results == b.rowpress.results
        assert a == b
        # The serial context trained the victim exactly once for all units.
        assert serial_runner.context.victims.stats()["misses"] == 1
        assert serial_runner.context.victims.stats()["hits"] >= 4

    def test_parallel_equals_serial_for_targeted_quantized_spec(self):
        """The new scenario families honour the same determinism contract."""
        spec = ComparisonSpec(
            model_keys=("resnet20",),
            repetitions=1,
            eval_samples=32,
            search=BitSearchConfig(max_flips=6, top_k_layers=2, eval_batch_size=32),
            training_epochs=1,
            seed=321,
            profile_seed=321,
            objective=ObjectiveConfig(
                "targeted", params={"source_class": 0, "target_class": 1}
            ),
            victim_precision="int4",
        )
        serial = ExperimentRunner(backend=SerialBackend()).run(spec).payload
        parallel = ExperimentRunner(backend=ProcessPoolBackend(max_workers=2)).run(spec).payload
        a, b = serial[0], parallel[0]
        assert a.rowhammer.results == b.rowhammer.results
        assert a.rowpress.results == b.rowpress.results
        for result in a.rowhammer.results + a.rowpress.results:
            assert result.objective_kind == "targeted"
            assert result.attack_success_rate is not None

    def test_shared_memory_shipping_is_bit_identical_and_clean(self):
        """Victims attached from shared memory == victims trained locally."""
        spec = _tiny_comparison_spec()
        serial = ExperimentRunner(backend=SerialBackend()).run(spec).payload
        runner = ExperimentRunner(backend=ProcessPoolBackend(max_workers=2))
        shared = runner.run(spec).payload
        assert serial[0] == shared[0]
        # The parent trained the victim once to export it...
        assert runner.context.victims.stats()["misses"] == 1
        # ...and every segment was unlinked after the pool drained.
        assert not _segments()
        # Opting out of sharing (workers retrain) must change nothing.
        retrained = ExperimentRunner(
            backend=ProcessPoolBackend(max_workers=2, share_victims=False)
        ).run(spec).payload
        assert serial[0] == retrained[0]

    def test_thread_backend_attack_determinism(self):
        """The thread pool honours the same bit-identical contract."""
        spec = _tiny_comparison_spec()
        serial = ExperimentRunner(backend=SerialBackend()).run(spec).payload
        runner = ExperimentRunner(backend=ThreadPoolBackend(max_workers=3))
        threaded = runner.run(spec).payload
        assert serial[0] == threaded[0]
        assert serial[0].rowhammer.results == threaded[0].rowhammer.results
        assert serial[0].rowpress.results == threaded[0].rowpress.results
        # The runner's context trained the victim exactly once; worker
        # threads materialised their private copies from the seeded state.
        assert runner.context.victims.stats()["misses"] == 1

    def test_chunked_process_pool_is_bit_identical(self):
        spec = _tiny_comparison_spec()
        serial = ExperimentRunner(backend=SerialBackend()).run(spec).payload
        chunked = ExperimentRunner(
            backend=ProcessPoolBackend(max_workers=2, chunk_size=2)
        ).run(spec).payload
        assert serial[0] == chunked[0]
        assert not _segments()
