"""ResultStore: every persisted result type reloads losslessly."""

import json

import numpy as np
import pytest

from repro.core.comparison import MechanismOutcome, ModelComparisonResult
from repro.core.results import AttackEvent, AttackResult
from repro.dram.geometry import DramGeometry
from repro.experiments import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    ChipProfileSpec,
    ComparisonSpec,
    DefenseMatrixSpec,
    ExperimentResult,
    ExperimentRunner,
    FlipSweepSpec,
    IntegrityError,
    ProfileDensityOutcome,
    ProfileDensitySpec,
    ResultStore,
    verify_envelope,
)

SMALL_GEOMETRY = DramGeometry(num_banks=1, rows_per_bank=24, cols_per_row=128)


def _attack_result(flips=2, mechanism="rowpress") -> AttackResult:
    events = [
        AttackEvent(
            iteration=index,
            tensor_name="layer.weight",
            weight_index=3 * index,
            bit_position=7,
            int_before=5,
            int_after=-123,
            loss_after=1.5 + index,
            accuracy_after=50.0 - index,
        )
        for index in range(flips)
    ]
    return AttackResult(
        model_name="ResNet-20",
        mechanism=mechanism,
        accuracy_before=88.5,
        accuracy_after=50.0 - (flips - 1),
        target_accuracy=12.0,
        num_flips=flips,
        converged=False,
        events=events,
        accuracy_curve=[88.5] + [50.0 - index for index in range(flips)],
        loss_curve=[0.5] * (flips + 1),
        candidate_bits=1234,
    )


def _comparison_payload():
    rowhammer = MechanismOutcome("rowhammer")
    rowhammer.results = [_attack_result(3, "rowhammer")]
    rowpress = MechanismOutcome("rowpress")
    rowpress.results = [_attack_result(2, "rowpress")]
    return [
        ModelComparisonResult(
            model_key="resnet20",
            display_name="ResNet-20",
            dataset_name="CIFAR-10",
            num_parameters=271_098,
            clean_accuracy=88.5,
            random_guess_accuracy=10.0,
            rowhammer=rowhammer,
            rowpress=rowpress,
        )
    ]


class TestEnvelope:
    def test_envelope_shape_and_listing(self, tmp_path):
        store = ResultStore(tmp_path)
        result = ExperimentResult(spec=ComparisonSpec(), payload=_comparison_payload())
        path = store.save("table1", result)
        envelope = json.loads(path.read_text())
        assert envelope["schema_version"] == SCHEMA_VERSION
        assert envelope["kind"] == "comparison"
        assert envelope["spec"]["kind"] == "comparison"
        assert store.names() == ["table1"]
        assert "table1" in store

    def test_version_mismatch_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("x", ExperimentResult(spec=ComparisonSpec(), payload=_comparison_payload()))
        payload = json.loads(store.path_for("x").read_text())
        payload["schema_version"] = 999
        store.path_for("x").write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema version"):
            store.load("x")

    def test_foreign_json_ignored_by_names(self, tmp_path):
        store = ResultStore(tmp_path)
        (tmp_path / "legacy.json").write_text(json.dumps({"rows": []}))
        store.save("real", ExperimentResult(spec=ComparisonSpec(), payload=_comparison_payload()))
        assert store.names() == ["real"]


class TestIntegrity:
    """Schema-2 envelopes carry a sha256 digest verified on every load."""

    def _saved(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("r", ExperimentResult(spec=ComparisonSpec(), payload=_comparison_payload()))
        return store

    def test_envelope_carries_content_digest(self, tmp_path):
        store = self._saved(tmp_path)
        envelope = json.loads(store.path_for("r").read_text())
        assert envelope["schema_version"] == SCHEMA_VERSION
        assert envelope["integrity"]["algo"] == "sha256"
        assert len(envelope["integrity"]["digest"]) == 64
        verify_envelope(store.path_for("r"), envelope)  # does not raise

    def test_tampered_payload_fails_load(self, tmp_path):
        store = self._saved(tmp_path)
        envelope = json.loads(store.path_for("r").read_text())
        envelope["payload"]["comparisons"][0]["clean_accuracy"] = 11.1  # silent flip
        store.path_for("r").write_text(json.dumps(envelope, indent=2))
        with pytest.raises(IntegrityError, match="digest mismatch"):
            store.load("r")
        assert issubclass(IntegrityError, ValueError)  # old callers still catch it

    def test_verify_false_skips_the_check(self, tmp_path):
        store = self._saved(tmp_path)
        envelope = json.loads(store.path_for("r").read_text())
        envelope["payload"]["comparisons"][0]["clean_accuracy"] = 11.1
        store.path_for("r").write_text(json.dumps(envelope, indent=2))
        trusting = ResultStore(tmp_path, verify=False)
        assert trusting.load("r").payload[0].clean_accuracy == 11.1

    def test_legacy_v1_envelope_reads_through(self, tmp_path):
        store = self._saved(tmp_path)
        envelope = json.loads(store.path_for("r").read_text())
        del envelope["integrity"]
        envelope["schema_version"] = 1
        store.path_for("r").write_text(json.dumps(envelope, indent=2))
        assert 1 in SUPPORTED_SCHEMA_VERSIONS
        fresh = ResultStore(tmp_path)
        assert fresh.names() == ["r"]
        assert fresh.load("r").payload == _comparison_payload()

    def test_digest_is_format_independent(self, tmp_path):
        # Re-indenting the file (same content, different bytes) still
        # verifies: the digest covers canonical JSON, not file bytes.
        store = self._saved(tmp_path)
        envelope = json.loads(store.path_for("r").read_text())
        store.path_for("r").write_text(json.dumps(envelope))  # compact form
        fresh = ResultStore(tmp_path)
        assert fresh.load("r").payload == _comparison_payload()


class TestMtimeIndex:
    """names()/load() stat the directory; files are re-read only on change."""

    def _count_reads(self, monkeypatch):
        from pathlib import Path

        reads = []
        original = Path.read_text

        def counting(self, *args, **kwargs):
            reads.append(self.name)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Path, "read_text", counting)
        return reads

    def test_repeated_names_reads_each_file_once(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        payload = _comparison_payload()
        store.save("a", ExperimentResult(spec=ComparisonSpec(), payload=payload))
        store.save("b", ExperimentResult(spec=ComparisonSpec(), payload=payload))
        reads = self._count_reads(monkeypatch)
        assert store.names() == ["a", "b"]
        assert sorted(reads) == ["a.json", "b.json"]
        reads.clear()
        assert store.names() == ["a", "b"]  # answered from the index
        assert reads == []

    def test_changed_file_is_re_read(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        payload = _comparison_payload()
        store.save("a", ExperimentResult(spec=ComparisonSpec(), payload=payload))
        assert store.names() == ["a"]
        # Rewriting the file (new mtime/size) invalidates its index entry.
        import os

        text = store.path_for("a").read_text()
        store.path_for("a").write_text(text + " ")
        os.utime(store.path_for("a"), ns=(1, 1))
        reads = self._count_reads(monkeypatch)
        assert store.names() == ["a"]
        assert reads == ["a.json"]

    def test_load_uses_index_and_deleted_file_drops_out(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        payload = _comparison_payload()
        store.save("a", ExperimentResult(spec=ComparisonSpec(), payload=payload))
        assert store.names() == ["a"]
        reads = self._count_reads(monkeypatch)
        loaded = store.load("a")  # envelope answered from the index
        assert reads == []
        assert loaded.payload == payload
        store.path_for("a").unlink()
        assert store.names() == []
        with pytest.raises(OSError):
            store.load("a")


class TestRoundTripsSynthetic:
    """Codec round-trips on hand-built payloads (no training needed)."""

    def test_comparison_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = ComparisonSpec(model_keys=("resnet20",), repetitions=1)
        payload = _comparison_payload()
        store.save("cmp", ExperimentResult(spec=spec, payload=payload))
        loaded = store.load("cmp")
        assert loaded.spec == spec
        assert loaded.payload == payload  # full AttackResult equality, events included

    def test_profile_density_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = ProfileDensitySpec(densities=(0.1, 0.2))
        payload = ProfileDensityOutcome(
            density_results=((0.1, _attack_result(2)), (0.2, _attack_result(1))),
            unconstrained=_attack_result(4, "unconstrained"),
        )
        store.save("ablation", ExperimentResult(spec=spec, payload=payload))
        loaded = store.load("ablation")
        assert loaded.spec == spec
        assert loaded.payload == payload
        assert loaded.payload.as_table()["unconstrained"]["num_flips"] == 4


class TestRoundTripsLive:
    """End-to-end: run small experiments, persist, reload, compare."""

    def test_defense_matrix_round_trip(self, tmp_path):
        spec = DefenseMatrixSpec(geometry=SMALL_GEOMETRY)
        store = ResultStore(tmp_path)
        runner = ExperimentRunner(store=store)
        result = runner.run(spec, save_as="defense")
        loaded = store.load("defense")
        assert loaded.spec == spec
        assert loaded.payload == result.payload  # dataclass equality per cell

    def test_flip_sweep_round_trip(self, tmp_path):
        spec = FlipSweepSpec(
            geometry=SMALL_GEOMETRY,
            hammer_counts=(50_000, 100_000),
            open_cycles=(5_000_000,),
            max_rows_per_bank=4,
        )
        store = ResultStore(tmp_path)
        result = ExperimentRunner(store=store).run(spec, save_as="sweep")
        loaded = store.load("sweep")
        assert loaded.spec == spec
        for mechanism in ("rowhammer", "rowpress"):
            live, back = getattr(result.payload, mechanism), getattr(loaded.payload, mechanism)
            assert np.array_equal(live.budgets, back.budgets)
            assert np.array_equal(live.flips, back.flips)
            assert live.rows_tested == back.rows_tested
        assert loaded.payload.equal_time() == result.payload.equal_time()

    def test_chip_profile_round_trip(self, tmp_path):
        spec = ChipProfileSpec(
            geometry=SMALL_GEOMETRY, hammer_count=600_000, open_cycles=60_000_000, row_stride=3
        )
        store = ResultStore(tmp_path)
        result = ExperimentRunner(store=store).run(spec, save_as="profile")
        loaded = store.load("profile")
        assert loaded.spec == spec
        for mechanism in ("rowhammer", "rowpress"):
            live = getattr(result.payload.pair, mechanism)
            back = getattr(loaded.payload.pair, mechanism)
            assert np.array_equal(live.flat_indices, back.flat_indices)
            assert np.array_equal(live.directions, back.directions)
            assert live.capacity_bits == back.capacity_bits
        assert loaded.payload.ideal_rowpress_cells == result.payload.ideal_rowpress_cells
