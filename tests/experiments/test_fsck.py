"""repro fsck: checksum verification, quarantine, index rebuild, shm sweep."""

import json
import os
import subprocess

from repro.core.comparison import MechanismOutcome, ModelComparisonResult
from repro.core.results import AttackEvent, AttackResult
from repro.experiments import (
    ComparisonSpec,
    ExperimentResult,
    JobQueue,
    ResultStore,
    ShardedResultStore,
    fsck_queue,
    fsck_store,
    sweep_shm,
)
from repro.experiments.cli import main


def _attack_result(flips=1, mechanism="rowpress"):
    events = [
        AttackEvent(
            iteration=0, tensor_name="layer.weight", weight_index=3, bit_position=7,
            int_before=5, int_after=-123, loss_after=1.5, accuracy_after=50.0,
        )
    ]
    return AttackResult(
        model_name="ResNet-20", mechanism=mechanism, accuracy_before=88.5,
        accuracy_after=50.0, target_accuracy=12.0, num_flips=flips, converged=False,
        events=events, accuracy_curve=[88.5, 50.0], loss_curve=[0.5, 1.5],
        candidate_bits=64,
    )


def _result(seed=0):
    rowhammer = MechanismOutcome("rowhammer")
    rowhammer.results = [_attack_result(mechanism="rowhammer")]
    rowpress = MechanismOutcome("rowpress")
    rowpress.results = [_attack_result()]
    payload = [
        ModelComparisonResult(
            model_key="resnet20", display_name="ResNet-20", dataset_name="CIFAR-10",
            num_parameters=271_098, clean_accuracy=88.5, random_guess_accuracy=10.0,
            rowhammer=rowhammer, rowpress=rowpress,
        )
    ]
    return ExperimentResult(spec=ComparisonSpec(seed=seed), payload=payload)


def _flip_byte(path, offset=100):
    raw = bytearray(path.read_bytes())
    raw[offset % len(raw)] ^= 1
    path.write_bytes(bytes(raw))


class TestStoreFsck:
    def test_clean_store_reports_zero_issues(self, tmp_path):
        store = ResultStore(tmp_path)
        for seed in range(3):
            store.save(f"r{seed}", _result(seed=seed))
        # A legacy v1 envelope and a foreign JSON file must not be flagged.
        envelope = json.loads(store.path_for("r0").read_text())
        del envelope["integrity"]
        envelope["schema_version"] = 1
        store.path_for("r0").write_text(json.dumps(envelope, indent=2))
        (tmp_path / "notes.json").write_text(json.dumps({"rows": []}))
        report = fsck_store(tmp_path)
        assert report.clean
        assert report.verified == 2 and report.legacy == 1

    def test_bit_flip_is_detected_and_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("good", _result(seed=1))
        store.save("bad", _result(seed=2))
        _flip_byte(store.path_for("bad"))
        report = fsck_store(tmp_path, quarantine=True)
        assert [issue.problem for issue in report.issues] == ["digest-mismatch"]
        assert report.issues[0].quarantined
        assert (tmp_path / "quarantine" / "bad.json").is_file()
        assert not store.path_for("bad").exists()
        # The repaired tree is clean and the good result untouched.
        after = fsck_store(tmp_path)
        assert after.clean and after.verified == 1

    def test_whitespace_flip_is_detected(self, tmp_path):
        # A flip in formatting passes the content digest; the byte-exact
        # canonical-serialisation check still catches it.
        store = ResultStore(tmp_path)
        store.save("r", _result())
        path = store.path_for("r")
        raw = path.read_text()
        path.write_text(raw.replace('\n  "', '\n   "', 1))
        report = fsck_store(tmp_path)
        assert [issue.problem for issue in report.issues] == ["digest-mismatch"]
        assert "canonical serialisation" in report.issues[0].detail

    def test_truncated_file_is_unreadable(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("r", _result())
        path = store.path_for("r")
        path.write_bytes(path.read_bytes()[:40])  # torn write
        report = fsck_store(tmp_path, quarantine=True)
        assert [issue.problem for issue in report.issues] == ["unreadable"]
        assert fsck_store(tmp_path).clean

    def test_sharded_corruption_rebuilds_the_index(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        store.save("a", _result(seed=1))
        store.save("b", _result(seed=2))
        _flip_byte(store.path_for("a"))
        report = fsck_store(tmp_path, quarantine=True)
        problems = sorted(issue.problem for issue in report.issues)
        assert "digest-mismatch" in problems
        assert report.rebuilt_indexes  # the touched shard's index was rewritten
        assert fsck_store(tmp_path).clean
        # The surviving result is still loadable; the corrupt one is gone.
        fresh = ShardedResultStore(tmp_path)
        assert fresh.names() == ["b"]
        assert fresh.load("b").spec.seed == 2

    def test_index_entry_without_file_is_stale(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        path = store.save("a", _result(seed=1))
        path.unlink()  # file vanished; the index still names it
        report = fsck_store(tmp_path)
        assert [issue.problem for issue in report.issues] == ["index-stale"]
        fsck_store(tmp_path, quarantine=True)
        assert fsck_store(tmp_path).clean

    def test_missing_directory_is_empty_report(self, tmp_path):
        report = fsck_store(tmp_path / "nope")
        assert report.clean and report.scanned == 0

    def test_quarantine_marks_rebuilt_index_issues_repaired(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        path = store.save("a", _result(seed=1))
        path.unlink()  # file vanished; the index still names it
        report = fsck_store(tmp_path, quarantine=True)
        stale = [i for i in report.issues if i.problem == "index-stale"]
        assert stale and all(issue.repaired for issue in stale)
        assert all(issue.to_dict()["repaired"] for issue in stale)
        assert fsck_store(tmp_path).clean

    def test_rebuild_survives_envelope_missing_kind_and_spec(self, tmp_path):
        # A parseable version-1 envelope without kind/spec is classified
        # legacy; the index rebuild must skip it, not abort on KeyError.
        store = ShardedResultStore(tmp_path)
        good = store.save("a", _result(seed=1))
        shard_dir = good.parent
        (shard_dir / "odd.json").write_text(
            json.dumps({"schema_version": 1, "payload": []})
        )
        _flip_byte(good)  # forces the shard's index to be rebuilt
        report = fsck_store(tmp_path, quarantine=True)
        assert report.rebuilt_indexes
        index = json.loads((shard_dir / "_index.json").read_text())
        assert "odd" not in index["entries"]
        assert fsck_store(tmp_path).clean


class TestQueueFsck:
    def test_clean_queue_reports_zero_issues(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(ComparisonSpec(seed=1).to_dict())
        queue.submit(ComparisonSpec(seed=2).to_dict())
        report = fsck_queue(tmp_path)
        assert report.clean and report.verified == 2

    def test_tampered_job_is_detected_and_quarantined(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(ComparisonSpec(seed=1).to_dict())
        path = tmp_path / f"job-{job.job_id}.json"
        payload = json.loads(path.read_text())
        payload["name"] = "tampered"
        path.write_text(json.dumps(payload, indent=2))
        report = fsck_queue(tmp_path, quarantine=True)
        assert [issue.problem for issue in report.issues] == ["digest-mismatch"]
        assert (tmp_path / "quarantine" / path.name).is_file()
        assert fsck_queue(tmp_path).clean
        assert len(JobQueue(tmp_path)) == 0  # the corrupt job never reloads

    def test_legacy_job_file_is_counted_not_flagged(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(ComparisonSpec(seed=1).to_dict())
        path = tmp_path / f"job-{job.job_id}.json"
        payload = json.loads(path.read_text())
        del payload["sha256"]
        path.write_text(json.dumps(payload, indent=2))
        report = fsck_queue(tmp_path)
        assert report.clean and report.legacy == 1


class TestShmSweep:
    def _segment(self, shm, name):
        (shm / name).write_bytes(b"\0" * 16)
        return name

    def test_dead_owner_segments_are_swept(self, tmp_path):
        shm = tmp_path / "shm"
        shm.mkdir()
        queue_dir = tmp_path / "queue"
        queue_dir.mkdir()
        orphan = self._segment(shm, "repro_victim_orphan")
        probe = subprocess.Popen(["sleep", "0"])
        probe.wait()  # dead pid
        (queue_dir / "registry.json").write_text(json.dumps({
            "pid": probe.pid, "segments": [orphan],
        }))
        swept = sweep_shm(queue_dirs=[queue_dir], shm_dir=shm)
        assert swept["removed"] == [orphan]
        assert not (shm / orphan).exists()
        assert not (queue_dir / "registry.json").exists()  # stale manifest gone
        assert swept["stale_manifests"] == [str(queue_dir / "registry.json")]

    def test_live_owner_segments_are_kept(self, tmp_path):
        shm = tmp_path / "shm"
        shm.mkdir()
        queue_dir = tmp_path / "queue"
        queue_dir.mkdir()
        mine = self._segment(shm, "repro_victim_mine")
        (queue_dir / "registry.json").write_text(json.dumps({
            "pid": os.getpid(), "segments": [mine],
        }))
        swept = sweep_shm(queue_dirs=[queue_dir], shm_dir=shm)
        assert swept["kept"] == [mine] and swept["removed"] == []
        assert (shm / mine).exists()
        assert (queue_dir / "registry.json").exists()  # live manifest kept

    def test_unclaimed_segments_are_kept_by_default(self, tmp_path):
        # "Claimed by no manifest *we were shown*" is not proof of
        # orphanhood: a live daemon serving another queue dir may own the
        # segment, and sweeping it would yank its shared memory away.
        shm = tmp_path / "shm"
        shm.mkdir()
        unclaimed = self._segment(shm, "repro_victim_unclaimed")
        swept = sweep_shm(shm_dir=shm)
        assert swept["removed"] == [] and swept["kept"] == [unclaimed]
        assert (shm / unclaimed).exists()

    def test_unclaimed_segments_removed_only_when_forced(self, tmp_path):
        shm = tmp_path / "shm"
        shm.mkdir()
        unclaimed = self._segment(shm, "repro_victim_unclaimed")
        foreign = self._segment(shm, "someone_elses_segment")
        swept = sweep_shm(shm_dir=shm, force_unclaimed=True)
        assert swept["removed"] == [unclaimed]
        assert (shm / foreign).exists()  # never touch foreign names

    def test_other_queues_live_segments_survive_a_forced_sweep(self, tmp_path):
        # Even under --force-unclaimed, a manifest that IS visible and
        # alive protects its segments.
        shm = tmp_path / "shm"
        shm.mkdir()
        queue_dir = tmp_path / "queue"
        queue_dir.mkdir()
        mine = self._segment(shm, "repro_victim_mine")
        (queue_dir / "registry.json").write_text(json.dumps({
            "pid": os.getpid(), "segments": [mine],
        }))
        swept = sweep_shm(
            queue_dirs=[queue_dir], shm_dir=shm, force_unclaimed=True
        )
        assert swept["kept"] == [mine] and (shm / mine).exists()


class TestFsckCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        queue_dir = tmp_path / "queue"
        ResultStore(store_dir).save("r", _result())
        JobQueue(queue_dir).submit(ComparisonSpec().to_dict())
        rc = main(["fsck", "--store", str(store_dir), "--queue", str(queue_dir)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 scanned, 1 verified" in out

    def test_corruption_without_quarantine_exits_one(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        store = ResultStore(store_dir)
        store.save("r", _result())
        _flip_byte(store.path_for("r"))
        rc = main(["fsck", "--store", str(store_dir), "--queue", str(tmp_path / "q")])
        captured = capsys.readouterr()
        assert rc == 1
        assert "found digest-mismatch" in captured.out
        assert "corrupt file(s) remain" in captured.err

    def test_quarantine_repairs_and_exits_zero(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        store = ResultStore(store_dir)
        store.save("r", _result())
        _flip_byte(store.path_for("r"))
        rc = main([
            "fsck", "--store", str(store_dir), "--queue", str(tmp_path / "q"),
            "--quarantine",
        ])
        assert rc == 0
        assert "quarantined digest-mismatch" in capsys.readouterr().out
        assert (store_dir / "quarantine" / "r.json").is_file()

    def test_quarantine_with_stale_index_exits_zero(self, tmp_path, capsys):
        # Quarantining a sharded file leaves its index entry dangling; the
        # same run rebuilds the index, so the exit code must not claim
        # corruption remains and tell the operator to rerun --quarantine.
        store_dir = tmp_path / "store"
        store = ShardedResultStore(store_dir)
        store.save("a", _result(seed=1))
        store.save("b", _result(seed=2))
        _flip_byte(store.path_for("a"))
        rc = main([
            "fsck", "--store", str(store_dir), "--queue", str(tmp_path / "q"),
            "--quarantine",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "quarantined digest-mismatch" in captured.out
        assert "repaired index-stale" in captured.out
        assert "corrupt file(s) remain" not in captured.err

    def test_shm_flag_sweeps(self, tmp_path, capsys):
        rc = main([
            "fsck", "--store", str(tmp_path / "s"), "--queue", str(tmp_path / "q"),
            "--shm",
        ])
        assert rc == 0
        assert "shm: removed" in capsys.readouterr().out
