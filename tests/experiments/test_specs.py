"""Spec serialisation: every experiment kind round-trips through JSON."""

import json

import pytest

from repro.core.bfa import BitSearchConfig
from repro.core.objective import ObjectiveConfig
from repro.dram.geometry import DramGeometry
from repro.experiments import (
    SPEC_KINDS,
    ChipProfileSpec,
    ComparisonSpec,
    DefenseConfig,
    DefenseMatrixSpec,
    FlipSweepSpec,
    ProfileDensitySpec,
    spec_from_dict,
)
from repro.faults.rowhammer import RowHammerConfig
from repro.faults.rowpress import RowPressConfig


def _round_trip(spec):
    """Serialise to a JSON string and reconstruct — must be lossless."""
    payload = json.loads(json.dumps(spec.to_dict()))
    return spec_from_dict(payload)


ALL_DEFAULT_SPECS = [
    ComparisonSpec(),
    DefenseMatrixSpec(),
    FlipSweepSpec(),
    ChipProfileSpec(),
    ProfileDensitySpec(),
]


class TestRoundTrip:
    @pytest.mark.parametrize("spec", ALL_DEFAULT_SPECS, ids=lambda s: s.kind)
    def test_default_specs_round_trip(self, spec):
        assert _round_trip(spec) == spec

    def test_customised_comparison_round_trips(self):
        spec = ComparisonSpec(
            model_keys=("resnet20", "m11"),
            repetitions=2,
            eval_samples=48,
            tolerance=1.5,
            search=BitSearchConfig(max_flips=20, top_k_layers=2, eval_batch_size=16),
            training_epochs=1,
            seed=99,
            profile_seed=5,
            rowhammer_budget=1e5,
            rowpress_budget=1e7,
        )
        back = _round_trip(spec)
        assert back == spec
        assert back.search.max_flips == 20
        assert back.model_keys == ("resnet20", "m11")

    def test_customised_defense_matrix_round_trips(self):
        spec = DefenseMatrixSpec(
            geometry=DramGeometry(num_banks=1, rows_per_bank=16, cols_per_row=128),
            rh_density=0.1,
            rp_density=0.3,
            chip_seed=4,
            defenses=(DefenseConfig("graphene", label="G", params={"mac_threshold": 512}),),
            rowhammer=RowHammerConfig(bank=0, victim_row=4, hammer_count=1000),
            rowpress=RowPressConfig(bank=0, pressed_row=8, open_cycles=5_000_000),
        )
        back = _round_trip(spec)
        assert back == spec
        assert back.defenses[0].name == "G"
        assert back.rowhammer.pattern is spec.rowhammer.pattern

    def test_targeted_quantized_comparison_round_trips(self):
        spec = ComparisonSpec(
            model_keys=("resnet20",),
            objective=ObjectiveConfig(
                "targeted",
                params={"source_class": 0, "target_class": 3, "success_threshold": 80.0},
            ),
            victim_precision="int4",
        )
        back = _round_trip(spec)
        assert back == spec
        assert back.objective.objective_kind == "targeted"
        assert back.objective.params["target_class"] == 3
        assert back.victim_precision == "int4"

    def test_pre_objective_payloads_still_decode(self):
        """Stored specs predating the objective layer keep loading."""
        payload = ComparisonSpec().to_dict()
        del payload["objective"]
        del payload["victim_precision"]
        spec = spec_from_dict(payload)
        assert spec.objective == ObjectiveConfig()
        assert spec.victim_precision == "float32"

    def test_invalid_objective_rejected_at_validation(self):
        """source == target fails at spec construction, not mid-run."""
        with pytest.raises(ValueError, match="must differ"):
            ComparisonSpec(
                objective=ObjectiveConfig(
                    "targeted", params={"source_class": 2, "target_class": 2}
                )
            )
        payload = ComparisonSpec().to_dict()
        payload["objective"] = {
            "objective_kind": "targeted",
            "params": {"source_class": 1, "target_class": 1},
        }
        with pytest.raises(ValueError, match="must differ"):
            spec_from_dict(payload)

    def test_invalid_victim_precision_rejected(self):
        with pytest.raises(ValueError, match="unknown victim precision"):
            ComparisonSpec(victim_precision="fp16")

    def test_customised_sweep_and_ablation_round_trip(self):
        sweep = FlipSweepSpec(hammer_counts=(1000, 2000), open_cycles=(10_000,), chip_seed=1)
        assert _round_trip(sweep) == sweep
        ablation = ProfileDensitySpec(densities=(0.1,), include_unconstrained=False, seed=2)
        assert _round_trip(ablation) == ablation


class TestRegistry:
    def test_all_kinds_registered(self):
        assert set(SPEC_KINDS) >= {
            "comparison",
            "defense_matrix",
            "flip_sweep",
            "chip_profile",
            "profile_density",
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment kind"):
            spec_from_dict({"kind": "nonsense"})

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError, match="missing the 'kind'"):
            spec_from_dict({})


class TestWorkUnits:
    def test_comparison_units_cover_roster(self):
        spec = ComparisonSpec(model_keys=("a", "b"), repetitions=2)
        units = spec.work_units()
        # per model: one clean unit + 2 mechanisms x 2 repetitions
        assert len(units) == 2 * (1 + 4)
        assert all(json.dumps(unit) for unit in units)

    def test_defense_matrix_units(self):
        spec = DefenseMatrixSpec()
        assert len(spec.work_units()) == len(spec.defenses) * 2

    def test_chip_profile_units_per_bank(self):
        spec = ChipProfileSpec(geometry=DramGeometry(num_banks=3, rows_per_bank=16, cols_per_row=64))
        assert len(spec.work_units()) == 6

    def test_profile_density_units(self):
        spec = ProfileDensitySpec(densities=(0.1, 0.2), include_unconstrained=False)
        assert len(spec.work_units()) == 2
