"""VictimRegistry: warm shared-memory victims with LRU eviction."""

import glob

import numpy as np
import pytest

from repro.experiments import VictimKey, VictimRegistry
from repro.experiments.shared import SEGMENT_PREFIX, attach_state


def _segments():
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


def _state(fill, size=32):
    return {"w": np.full(size, float(fill))}


KEY_A = VictimKey("resnet20", 1, None)
KEY_B = VictimKey("resnet20", 2, None)
KEY_C = VictimKey("m11", 1, 3)


class TestPutGet:
    def test_put_exports_and_get_attaches(self):
        with VictimRegistry() as registry:
            manifest = registry.put(KEY_A, _state(7.0))
            assert (manifest.model_key, manifest.seed) == ("resnet20", 1)
            fetched = registry.get(KEY_A)
            assert fetched is manifest
            handle = attach_state(fetched.state)
            assert np.array_equal(handle.arrays["w"], _state(7.0)["w"])
            handle.close()
        assert not _segments()

    def test_miss_returns_none_and_counts(self):
        with VictimRegistry() as registry:
            assert registry.get(KEY_A) is None
            assert registry.stats()["misses"] == 1

    def test_reinsert_returns_existing_manifest(self):
        with VictimRegistry() as registry:
            first = registry.put(KEY_A, _state(1.0))
            second = registry.put(KEY_A, _state(2.0))  # same key: kept as-is
            assert second is first
            assert len(registry) == 1

    def test_get_or_export_builds_once(self):
        builds = []
        with VictimRegistry() as registry:
            for _ in range(3):
                registry.get_or_export(KEY_A, lambda: builds.append(1) or _state(1.0))
            assert builds == [1]
            assert registry.stats()["hits"] == 2


class TestEviction:
    def test_max_entries_evicts_lru(self):
        with VictimRegistry(max_entries=2) as registry:
            registry.put(KEY_A, _state(1.0))
            registry.put(KEY_B, _state(2.0))
            registry.get(KEY_A)  # touch A: B becomes LRU
            registry.put(KEY_C, _state(3.0))
            assert KEY_B not in registry
            assert KEY_A in registry and KEY_C in registry
            assert registry.stats()["evictions"] == 1
            assert len(_segments()) == 2  # evicted segment unlinked

    def test_max_bytes_budget(self):
        state = _state(1.0, size=128)  # 1 KiB per entry
        budget = 2 * state["w"].nbytes + 16
        with VictimRegistry(max_bytes=budget) as registry:
            registry.put(KEY_A, state)
            registry.put(KEY_B, state)
            assert registry.stats()["evictions"] == 0
            registry.put(KEY_C, state)  # over budget: LRU (A) evicted
            assert KEY_A not in registry
            assert registry.total_bytes() <= budget

    def test_oversized_entry_is_still_served(self):
        with VictimRegistry(max_bytes=8) as registry:
            manifest = registry.put(KEY_A, _state(1.0, size=64))
            assert registry.get(KEY_A) is manifest  # never evict the newest
            registry.put(KEY_B, _state(2.0, size=64))
            assert KEY_A not in registry  # the next insertion displaces it

    def test_explicit_evict(self):
        with VictimRegistry() as registry:
            registry.put(KEY_A, _state(1.0))
            assert registry.evict(KEY_A)
            assert not registry.evict(KEY_A)
            assert not _segments()


class TestShutdown:
    def test_close_unlinks_everything_and_rejects_puts(self):
        registry = VictimRegistry()
        registry.put(KEY_A, _state(1.0))
        registry.put(KEY_B, _state(2.0))
        registry.close()
        assert not _segments()
        assert len(registry) == 0
        with pytest.raises(RuntimeError, match="closed"):
            registry.put(KEY_C, _state(3.0))

    def test_manifests_and_keys_lru_order(self):
        with VictimRegistry() as registry:
            registry.put(KEY_A, _state(1.0))
            registry.put(KEY_B, _state(2.0))
            registry.get(KEY_A)
            assert registry.keys() == [KEY_B, KEY_A]
            assert [m.seed for m in registry.manifests()] == [2, 1]
