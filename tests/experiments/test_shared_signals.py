"""Signal backstop: a killed segment owner leaves nothing in ``/dev/shm``."""

import os
import signal
import subprocess
import sys
import textwrap
import time

OWNER_SCRIPT = textwrap.dedent(
    """
    import sys, time
    import numpy as np
    from repro.experiments.shared import export_state
    handle, manifest = export_state({"w": np.arange(64.0)})
    print(manifest.shm_name, flush=True)
    time.sleep(60)  # wait to be killed
    """
)


def _spawn_owner():
    process = subprocess.Popen(
        [sys.executable, "-c", OWNER_SCRIPT],
        stdout=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    segment_name = process.stdout.readline().strip()
    assert segment_name.startswith("repro_victim_")
    assert os.path.exists(f"/dev/shm/{segment_name}")
    return process, segment_name


def _wait_gone(path, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not os.path.exists(path):
            return True
        time.sleep(0.05)
    return False


class TestSignalBackstop:
    def test_sigterm_unlinks_owned_segments(self):
        process, segment = _spawn_owner()
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=10)
        assert _wait_gone(f"/dev/shm/{segment}")
        # Default SIGTERM semantics preserved: died by the signal.
        assert process.returncode == -signal.SIGTERM

    def test_sigint_unlinks_owned_segments(self):
        process, segment = _spawn_owner()
        process.send_signal(signal.SIGINT)
        process.wait(timeout=10)
        assert _wait_gone(f"/dev/shm/{segment}")
        # SIGINT surfaces as KeyboardInterrupt (exit code 1 from the
        # traceback path) or a signal death — either way, no leak.
        assert process.returncode != 0

    def test_killed_serving_daemon_leaks_nothing(self):
        """SIGTERM mid-serve (registry holding victims) cleans /dev/shm."""
        script = textwrap.dedent(
            """
            import time
            import numpy as np
            from repro.experiments import VictimKey, VictimRegistry
            registry = VictimRegistry()
            m1 = registry.put(VictimKey("resnet20", 1, None), {"w": np.ones(32)})
            m2 = registry.put(VictimKey("resnet20", 2, None), {"w": np.ones(32)})
            print(m1.state.shm_name, m2.state.shm_name, flush=True)
            time.sleep(60)
            """
        )
        process = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        names = process.stdout.readline().split()
        assert len(names) == 2
        for name in names:
            assert os.path.exists(f"/dev/shm/{name}")
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=10)
        for name in names:
            assert _wait_gone(f"/dev/shm/{name}")
