"""Timeline experiment kinds: round-trips, backend determinism, nan conventions.

The ``trr_sampling`` and ``refsync_sweep`` specs ride the same rails as the
older chip experiments: JSON round-trips through ``spec_from_dict``, stable
spec hashes, byte-identical stored envelopes across serial / thread /
process / distributed backends, and nan-aware persistence (a refsync cell
with zero activations has an undefined sampled fraction; it must survive a
store round-trip as nan and render as ``-`` in reports).
"""

import json
import math

import pytest

from repro.analysis.figures import render_heatmap, render_sampling_histogram
from repro.dram.geometry import DramGeometry
from repro.experiments import (
    SPEC_KINDS,
    DistributedBackend,
    ExperimentRunner,
    ProcessPoolBackend,
    RefsyncSweepSpec,
    ResultStore,
    ShardedResultStore,
    ThreadPoolBackend,
    TrrSamplingSpec,
    spec_from_dict,
    spec_hash,
)

SMALL_GEOMETRY = DramGeometry(num_banks=1, rows_per_bank=48, cols_per_row=128)

SMALL_REFSYNC = RefsyncSweepSpec(
    geometry=SMALL_GEOMETRY,
    victim_row=24,
    windows=6,
    act_rates=(0, 48),
    phases=(0, 2),
    decoy_rows=(2, 6),
)

SMALL_TRR = TrrSamplingSpec(
    geometry=SMALL_GEOMETRY,
    aggressor_rows=(23, 25),
    windows=6,
    capacities=(0, 2),
)


def _round_trip(spec):
    return spec_from_dict(json.loads(json.dumps(spec.to_dict())))


class TestRoundTrips:
    def test_kinds_registered(self):
        assert "trr_sampling" in SPEC_KINDS
        assert "refsync_sweep" in SPEC_KINDS

    @pytest.mark.parametrize(
        "spec",
        [TrrSamplingSpec(), RefsyncSweepSpec(), SMALL_TRR, SMALL_REFSYNC],
        ids=["trr-default", "refsync-default", "trr-small", "refsync-small"],
    )
    def test_specs_round_trip(self, spec):
        assert _round_trip(spec) == spec

    def test_customised_refsync_round_trips(self):
        spec = RefsyncSweepSpec(
            geometry=SMALL_GEOMETRY,
            chip_seed=99,
            victim_row=10,
            act_rates=(0, 16, 32),
            phases=(1, 3),
            decoy_rows=(4,),
            capacity=3,
            policy="stride",
            refresh_bins=6,
            engine="reference",
        )
        back = _round_trip(spec)
        assert back == spec
        assert back.engine == "reference"
        assert back.policy == "stride"

    def test_customised_trr_sampling_round_trips(self):
        spec = TrrSamplingSpec(
            geometry=SMALL_GEOMETRY,
            capacities=(0, 1, 2, 8),
            policy="random",
            sampler_seed=17,
            refresh_bins=4,
        )
        assert _round_trip(spec) == spec

    @pytest.mark.parametrize(
        "spec", [SMALL_TRR, SMALL_REFSYNC], ids=["trr", "refsync"]
    )
    def test_spec_hash_stable_under_round_trip(self, spec):
        assert spec_hash(spec.to_dict()) == spec_hash(_round_trip(spec).to_dict())

    def test_spec_hash_distinguishes_fields(self):
        base = SMALL_REFSYNC
        changed = RefsyncSweepSpec(
            geometry=SMALL_GEOMETRY,
            victim_row=24,
            windows=6,
            act_rates=(0, 48),
            phases=(0, 2),
            decoy_rows=(2, 6),
            capacity=base.capacity + 1,
        )
        assert spec_hash(base.to_dict()) != spec_hash(changed.to_dict())


class TestBackendDeterminism:
    def _stored_bytes(self, tmp_path, label, backend, spec):
        store = ResultStore(tmp_path / label)
        ExperimentRunner(store=store, backend=backend).run(spec, save_as="exp")
        return store.path_for("exp").read_text()

    @pytest.mark.parametrize(
        "spec", [SMALL_TRR, SMALL_REFSYNC], ids=["trr", "refsync"]
    )
    def test_thread_pool_matches_serial(self, tmp_path, spec):
        serial = self._stored_bytes(tmp_path, "serial", None, spec)
        threaded = self._stored_bytes(
            tmp_path, "thread", ThreadPoolBackend(max_workers=3), spec
        )
        assert threaded == serial

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "spec", [SMALL_TRR, SMALL_REFSYNC], ids=["trr", "refsync"]
    )
    def test_process_pool_matches_serial(self, tmp_path, spec):
        serial = self._stored_bytes(tmp_path, "serial", None, spec)
        pooled = self._stored_bytes(
            tmp_path, "process", ProcessPoolBackend(max_workers=2), spec
        )
        assert pooled == serial

    @pytest.mark.slow
    def test_distributed_matches_serial(self, tmp_path):
        serial = self._stored_bytes(tmp_path, "serial", None, SMALL_REFSYNC)
        distributed = self._stored_bytes(
            tmp_path, "dist", DistributedBackend(num_workers=2), SMALL_REFSYNC
        )
        assert distributed == serial

    def test_engines_agree_through_specs(self, tmp_path):
        vec = ExperimentRunner().run(SMALL_REFSYNC).payload
        ref_spec = RefsyncSweepSpec(
            geometry=SMALL_GEOMETRY,
            victim_row=24,
            windows=6,
            act_rates=(0, 48),
            phases=(0, 2),
            decoy_rows=(2, 6),
            engine="reference",
        )
        ref = ExperimentRunner().run(ref_spec).payload
        assert vec.flips == ref.flips
        assert vec.nrr_rows == ref.nrr_rows
        assert repr(vec.sampled_fractions) == repr(ref.sampled_fractions)


class TestNanConventions:
    def test_zero_act_cell_is_nan_and_survives_the_store(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store")
        result = ExperimentRunner(store=store).run(SMALL_REFSYNC, save_as="refsync")
        outcome = result.payload
        zero_cell = outcome.sampled_fractions[0][0]  # act_rate=0, phase=0
        assert math.isnan(zero_cell)

        raw = store.path_for("refsync").read_text()
        assert "NaN" not in raw  # strict JSON: nan is encoded as null

        loaded = store.load("refsync").payload
        assert math.isnan(loaded.sampled_fractions[0][0])
        assert loaded.flips == outcome.flips
        assert loaded.nrr_rows == outcome.nrr_rows

    def test_nan_cell_renders_as_dash(self):
        outcome = ExperimentRunner().run(SMALL_REFSYNC).payload
        rendered = render_heatmap(
            outcome.sampled_fractions,
            row_labels=SMALL_REFSYNC.act_rates,
            col_labels=SMALL_REFSYNC.phases,
            digits=2,
        )
        # act_rate=0 / phase=0 is the only empty window: no aggressor ACTs
        # and no decoy slots, so the sampled fraction is undefined.  With
        # phase=2 the decoy activations alone keep the cell defined.
        first_data_row = rendered.splitlines()[2]
        assert first_data_row.split() == ["0", "-", "1.00"]


class TestOutcomeAccessors:
    def test_trr_outcome_round_trips_and_reports(self, tmp_path):
        store = ShardedResultStore(tmp_path / "store")
        result = ExperimentRunner(store=store).run(SMALL_TRR, save_as="trr")
        outcome = result.payload
        by_capacity = outcome.flips_by_capacity()
        assert sorted(by_capacity) == [0, 2]
        # An unsampled chip must flip at least as much as a defended one.
        assert by_capacity[0] >= by_capacity[2]

        loaded = store.load("trr").payload
        assert loaded.flips_by_capacity() == by_capacity
        for capacity, timeline_result in loaded.entries:
            text = render_sampling_histogram(
                timeline_result.sampling_histogram, title=f"capacity {capacity}"
            )
            assert text.startswith(f"capacity {capacity}")

    def test_refsync_outcome_max_flips(self):
        outcome = ExperimentRunner().run(SMALL_REFSYNC).payload
        assert outcome.max_flips() == max(
            cell for row in outcome.flips for cell in row
        )
        assert tuple(outcome.act_rates) == SMALL_REFSYNC.act_rates
        assert tuple(outcome.phases) == SMALL_REFSYNC.phases
