"""ShardedResultStore: layout, legacy migration, and streaming reports."""

import json

from repro.core.comparison import MechanismOutcome, ModelComparisonResult
from repro.core.results import AttackEvent, AttackResult
from repro.experiments import (
    SCHEMA_VERSION,
    ComparisonSpec,
    ExperimentResult,
    ResultStore,
    ShardedResultStore,
    open_store,
    spec_hash,
    verify_envelope,
)
from repro.experiments.cli import main


def _attack_result(flips=1, mechanism="rowpress"):
    events = [
        AttackEvent(
            iteration=0, tensor_name="layer.weight", weight_index=3, bit_position=7,
            int_before=5, int_after=-123, loss_after=1.5, accuracy_after=50.0,
        )
    ]
    return AttackResult(
        model_name="ResNet-20", mechanism=mechanism, accuracy_before=88.5,
        accuracy_after=50.0, target_accuracy=12.0, num_flips=flips, converged=False,
        events=events, accuracy_curve=[88.5, 50.0], loss_curve=[0.5, 1.5],
        candidate_bits=64,
    )


def _comparison_payload():
    rowhammer = MechanismOutcome("rowhammer")
    rowhammer.results = [_attack_result(mechanism="rowhammer")]
    rowpress = MechanismOutcome("rowpress")
    rowpress.results = [_attack_result()]
    return [
        ModelComparisonResult(
            model_key="resnet20", display_name="ResNet-20", dataset_name="CIFAR-10",
            num_parameters=271_098, clean_accuracy=88.5, random_guess_accuracy=10.0,
            rowhammer=rowhammer, rowpress=rowpress,
        )
    ]


def _result(seed=0):
    return ExperimentResult(spec=ComparisonSpec(seed=seed), payload=_comparison_payload())


class TestShardedLayout:
    def test_save_places_file_under_spec_hash_shard(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        result = _result(seed=3)
        path = store.save("exp", result)
        prefix = spec_hash(result.spec.to_dict())[:2]
        assert path == tmp_path / "shards" / prefix / "exp.json"
        index = json.loads((path.parent / "_index.json").read_text())
        assert index["entries"]["exp"]["kind"] == "comparison"
        assert index["entries"]["exp"]["spec_hash"].startswith(prefix)

    def test_round_trip_and_contains(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        result = _result()
        store.save("exp", result)
        loaded = store.load("exp")
        assert loaded.spec == result.spec
        assert loaded.payload == result.payload
        assert "exp" in store and "missing" not in store

    def test_names_come_from_indexes_without_parsing_results(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        for seed in range(5):
            store.save(f"exp{seed}", _result(seed=seed))
        cold = ShardedResultStore(tmp_path)
        assert cold.names() == [f"exp{seed}" for seed in range(5)]
        assert cold.files_parsed == 0  # only the shard indexes were read

    def test_fresh_instance_sees_saved_results(self, tmp_path):
        ShardedResultStore(tmp_path).save("exp", _result())
        assert ShardedResultStore(tmp_path).load("exp").payload == _comparison_payload()

    def test_load_does_not_retain_envelopes(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        store.save("exp", _result())
        reader = ShardedResultStore(tmp_path)
        reader.load("exp")
        reader.load("exp")
        assert reader.files_parsed == 2  # parsed per call...
        assert reader._index == {}  # ...and never cached in memory


class TestLegacyMigration:
    def test_flat_files_read_through(self, tmp_path):
        ResultStore(tmp_path).save("legacy", _result(seed=1))
        store = ShardedResultStore(tmp_path)
        store.save("fresh", _result(seed=2))
        assert store.names() == ["fresh", "legacy"]
        assert store.load("legacy").payload == _comparison_payload()

    def test_migrate_moves_flat_files_into_shards(self, tmp_path):
        flat = ResultStore(tmp_path)
        flat.save("a", _result(seed=1))
        flat.save("b", _result(seed=2))
        store = ShardedResultStore(tmp_path)
        store.save("c", _result(seed=3))
        moved = store.migrate()
        assert sorted(moved) == ["a", "b"]
        assert not (tmp_path / "a.json").exists()
        assert store.names() == ["a", "b", "c"]
        # Round trip on the mixed-then-migrated tree is lossless.
        for name in store.names():
            assert store.load(name).payload == _comparison_payload()
        # Migration is idempotent.
        assert store.migrate() == []

    def test_saving_existing_name_supersedes_flat_copy(self, tmp_path):
        ResultStore(tmp_path).save("exp", _result(seed=1))
        store = ShardedResultStore(tmp_path)
        store.save("exp", _result(seed=9))
        assert not (tmp_path / "exp.json").exists()
        assert store.names() == ["exp"]
        assert store.load("exp").spec.seed == 9

    def test_migrate_store_cli(self, tmp_path, capsys):
        flat = ResultStore(tmp_path)
        flat.save("a", _result(seed=1))
        assert main(["migrate-store", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "migrated 1 result file(s)" in out
        assert "verified 1 checksummed result file(s)" in out
        # open_store now auto-detects the sharded layout.
        assert isinstance(open_store(tmp_path), ShardedResultStore)
        assert open_store(tmp_path).load("a").spec.seed == 1

    def test_migrate_upgrades_checksum_less_legacy_files(self, tmp_path):
        # Regression: migrating a v1 (pre-checksum) flat store must
        # compute digests on the way, not move unverifiable files around.
        flat = ResultStore(tmp_path)
        flat.save("old", _result(seed=4))
        path = tmp_path / "old.json"
        envelope = json.loads(path.read_text())
        del envelope["integrity"]
        envelope["schema_version"] = 1
        path.write_text(json.dumps(envelope, indent=2))
        store = ShardedResultStore(tmp_path)
        assert store.migrate() == ["old"]
        migrated = json.loads(store.path_for("old").read_text())
        assert migrated["schema_version"] == SCHEMA_VERSION
        assert migrated["integrity"]["algo"] == "sha256"
        verify_envelope(store.path_for("old"), migrated)  # does not raise
        assert store.load("old").payload == _comparison_payload()
        assert store.migrate() == []  # still idempotent

    def test_shard_index_records_content_digest(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        path = store.save("exp", _result(seed=3))
        index = json.loads((path.parent / "_index.json").read_text())
        envelope = json.loads(path.read_text())
        assert index["entries"]["exp"]["sha256"] == envelope["integrity"]["digest"]


class TestOpenStore:
    def test_auto_detection(self, tmp_path):
        assert isinstance(open_store(tmp_path), ResultStore)
        assert not isinstance(open_store(tmp_path), ShardedResultStore)
        ShardedResultStore(tmp_path).save("exp", _result())
        assert isinstance(open_store(tmp_path), ShardedResultStore)

    def test_forced_flavours(self, tmp_path):
        assert isinstance(open_store(tmp_path, sharded=True), ShardedResultStore)
        assert not isinstance(open_store(tmp_path, sharded=False), ShardedResultStore)


class TestStreamingReport:
    """Acceptance: 1000-file sharded report streams and matches unsharded."""

    NUM_FILES = 1000

    def _populate(self, store, tmp_path_factory=None):
        payload = _comparison_payload()
        for seed in range(self.NUM_FILES):
            store.save(
                f"exp{seed:04d}",
                ExperimentResult(spec=ComparisonSpec(seed=seed), payload=payload),
            )

    def test_thousand_file_report_streams_and_matches_flat(self, tmp_path, capsys):
        sharded_dir = tmp_path / "sharded"
        flat_dir = tmp_path / "flat"
        self._populate(ShardedResultStore(sharded_dir))
        self._populate(ResultStore(flat_dir))
        # The files really are spread over many shards.
        shards = list((sharded_dir / "shards").iterdir())
        assert len(shards) > 100

        assert main(["report", "--all", "--store", str(sharded_dir)]) == 0
        sharded_out = capsys.readouterr().out
        assert main(["report", "--all", "--store", str(flat_dir)]) == 0
        flat_out = capsys.readouterr().out
        assert sharded_out == flat_out
        assert sharded_out.count("## exp") == self.NUM_FILES

    def test_streaming_does_not_hold_all_envelopes(self, tmp_path):
        store = ShardedResultStore(tmp_path)
        self._populate(store)
        reader = ShardedResultStore(tmp_path)
        names = reader.names()
        assert len(names) == self.NUM_FILES
        assert reader.files_parsed == 0  # listing cost: shard indexes only
        seen = 0
        for _, result in reader.iter_results():
            seen += 1
            assert reader._index == {}  # nothing retained while streaming
        assert seen == self.NUM_FILES
        assert reader.files_parsed == self.NUM_FILES  # each file parsed once
