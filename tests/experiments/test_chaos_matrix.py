"""Chaos matrix: injected faults must recover to byte-identical results.

Each scenario installs a deterministic :class:`FaultPlan`, runs a cheap
experiment through the faulted path, and asserts three things: the run
recovers (or fails with quarantine diagnostics where that is the contract),
the stored result is byte-identical to the fault-free serial run, and no
``repro_victim_*`` shared-memory segment is left behind in ``/dev/shm``.
"""

import glob
import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.dram.geometry import DramGeometry
from repro.experiments import (
    DefenseMatrixSpec,
    ExperimentRunner,
    ExperimentService,
    IntegrityError,
    JobQueue,
    ResultStore,
    ShardedResultStore,
    fsck_queue,
    fsck_store,
)
from repro.experiments.distributed import DistributedBackend, PoisonChunkError
from repro.testing import chaos
from repro.testing.chaos import ALLOW_CRASH_ENV, PLAN_ENV, FaultPlan, FaultSpec
from repro.utils.resilience import ResilienceConfig

SMALL_GEOMETRY = DramGeometry(num_banks=1, rows_per_bank=24, cols_per_row=128)

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(autouse=True)
def _clean_chaos_state(monkeypatch):
    monkeypatch.delenv(PLAN_ENV, raising=False)
    monkeypatch.delenv(ALLOW_CRASH_ENV, raising=False)
    chaos.reset()
    yield
    chaos.reset()


def _cheap_spec(seed=11):
    return DefenseMatrixSpec(geometry=SMALL_GEOMETRY, chip_seed=seed)


def _serial_bytes(tmp_path, spec, name="exp"):
    """The stored envelope text of a fault-free serial run."""
    store = ResultStore(tmp_path / "serial")
    ExperimentRunner(store=store).run(spec, save_as=name)
    return store.path_for(name).read_text()


def _shm_segments():
    return glob.glob("/dev/shm/repro_victim_*")


@pytest.mark.slow
class TestWorkerKilledMidChunk:
    def test_crashing_workers_degrade_to_byte_identical_serial(
        self, tmp_path, monkeypatch
    ):
        """Every worker crashes on its first chunk; the run must still finish.

        The env-inherited plan kills each spawned worker process on its
        first ``worker.chunk`` traversal, so the whole fleet (originals
        and the respawned replacement) dies mid-chunk.  The backend
        requeues every lost chunk, exhausts its respawn budget, declares a
        stall and degrades to the serial fallback — producing exactly the
        fault-free bytes.
        """
        spec = _cheap_spec(seed=3)
        expected = _serial_bytes(tmp_path, spec)
        plan = FaultPlan.single("worker.chunk", "crash", after=1, count=1)
        monkeypatch.setenv(PLAN_ENV, plan.to_json())
        monkeypatch.setenv(ALLOW_CRASH_ENV, "1")
        backend = DistributedBackend(
            num_workers=2,
            resilience=ResilienceConfig.from_env(
                {},  # ignore the env: the plan variables are for workers
                connect_timeout=3.0,
                worker_respawns=1,
                fallback_backend="serial",
            ),
        )
        store = ResultStore(tmp_path / "dist")
        ExperimentRunner(store=store, backend=backend).run(spec, save_as="exp")
        assert backend.last_execution_path == "serial"
        assert store.path_for("exp").read_text() == expected
        assert _shm_segments() == []


@pytest.mark.slow
class TestDroppedFrame:
    def test_dropped_task_frame_is_requeued_and_recovers(self, tmp_path):
        """A task frame vanishing on the wire must not lose its chunk.

        The cooperative ``drop`` fault swallows the first chunk send; the
        worker keeps heartbeating while it waits for a task that never
        arrives, so the backend's per-chunk timeout (not the heartbeat
        monitor) trips, the chunk is requeued to another worker, and the
        results stay byte-identical.
        """
        spec = _cheap_spec(seed=4)
        expected = _serial_bytes(tmp_path, spec)
        backend = DistributedBackend(
            num_workers=2,
            resilience=ResilienceConfig.from_env(
                {}, chunk_timeout=1.5, connect_timeout=15.0
            ),
        )
        store = ResultStore(tmp_path / "dist")
        plan = FaultPlan.single("distributed.send_chunk", "drop", after=1)
        with chaos.active_plan(plan) as scope:
            ExperimentRunner(store=store, backend=backend).run(spec, save_as="exp")
        assert ("distributed.send_chunk", "drop") in scope.fired
        assert backend.last_execution_path == "distributed"
        assert store.path_for("exp").read_text() == expected
        assert _shm_segments() == []


class TestInterruptedStoreWrite:
    def test_partial_sharded_write_leaves_no_torn_envelope(self, tmp_path):
        """A torn sharded-store write must never corrupt an envelope.

        The first save attempt fails mid-write (temp file only); the store
        directory holds no readable result.  The retry writes the same
        bytes a fault-free run stores.
        """
        spec = _cheap_spec(seed=5)
        expected = _serial_bytes(tmp_path, spec)
        store = ShardedResultStore(tmp_path / "sharded")
        runner = ExperimentRunner(store=store)
        with chaos.active_plan(FaultPlan.single("store.write", "partial_write")):
            with pytest.raises(OSError):
                runner.run(spec, save_as="exp")
        assert store.names() == []  # nothing readable was committed
        runner.run(spec, save_as="exp")
        assert store.path_for("exp").read_text() == expected
        assert _shm_segments() == []

    def test_partial_flat_write_preserves_previous_envelope(self, tmp_path):
        """An overwrite that tears mid-write keeps the old envelope intact."""
        store = ResultStore(tmp_path / "flat")
        runner = ExperimentRunner(store=store)
        runner.run(_cheap_spec(seed=5), save_as="exp")
        before = store.path_for("exp").read_text()
        with chaos.active_plan(FaultPlan.single("store.write", "partial_write")):
            with pytest.raises(OSError):
                ExperimentRunner(store=store).run(_cheap_spec(seed=6), save_as="exp")
        assert store.path_for("exp").read_text() == before


@pytest.mark.slow
class TestDaemonSigkillMidJob:
    def test_restart_resumes_from_chunk_checkpoints(self, tmp_path):
        """SIGKILL the daemon mid-job; the restart must resume, not rerun.

        A driver process runs the daemon executor with a chaos ``delay``
        on every ``service.chunk``, widening the kill window.  Once the
        first chunk checkpoint lands on disk the driver is SIGKILLed.  A
        fresh service over the same directories requeues the interrupted
        job (queue recovery), resumes the completed chunks from their
        checkpoints (``last_resumed > 0``) and finishes — byte-identical
        to the fault-free serial run.
        """
        spec = _cheap_spec(seed=7)
        expected = _serial_bytes(tmp_path, spec)
        queue_dir = tmp_path / "queue"
        store_dir = tmp_path / "store"
        driver = textwrap.dedent(
            """
            import sys
            from repro.dram.geometry import DramGeometry
            from repro.experiments import DefenseMatrixSpec, ExperimentService

            spec = DefenseMatrixSpec(
                geometry=DramGeometry(num_banks=1, rows_per_bank=24, cols_per_row=128),
                chip_seed=7,
            )
            service = ExperimentService(queue_dir=sys.argv[1], store_dir=sys.argv[2])
            service._dispatch({"op": "submit", "spec": spec.to_dict(), "name": "exp"})
            service.process_once()
            """
        )
        plan = FaultPlan.single("service.chunk", "delay", delay=0.25, count=10_000)
        env = {
            **os.environ,
            "PYTHONPATH": SRC,
            PLAN_ENV: plan.to_json(),
        }
        process = subprocess.Popen(
            [sys.executable, "-c", driver, str(queue_dir), str(store_dir)], env=env
        )
        try:
            checkpoint_root = queue_dir / "checkpoints"
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if list(checkpoint_root.glob("*/chunk-*.pkl")):
                    break
                if process.poll() is not None:
                    pytest.fail("driver finished before it could be killed")
                time.sleep(0.02)
            else:
                pytest.fail("no chunk checkpoint appeared within 60s")
            os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

        service = ExperimentService(queue_dir=queue_dir, store_dir=store_dir)
        try:
            # The interrupted job was requeued by queue recovery, not lost.
            assert len(service.recovery["requeued"]) == 1
            assert service.drain() == 1
            assert service.checkpointed.last_resumed > 0
            (job,) = service.queue.jobs()
            assert job.state == "done"
            assert service.store.path_for("exp").read_text() == expected
            # Finished jobs leave no checkpoint residue behind.
            assert list((queue_dir / "checkpoints").glob("*/chunk-*.pkl")) == []
        finally:
            service.registry.close()
        assert _shm_segments() == []


@pytest.mark.slow
class TestQuarantine:
    def test_poison_chunk_fails_with_diagnostics(self, tmp_path):
        """A chunk that kills every courier must quarantine, not loop.

        Every task send disconnects, so the same chunk keeps bouncing;
        after ``max_chunk_retries`` requeues the run fails with a
        :class:`PoisonChunkError` whose diagnostics name each attempt's
        failure.
        """
        spec = _cheap_spec(seed=8)
        backend = DistributedBackend(
            num_workers=2,
            resilience=ResilienceConfig.from_env(
                {},
                connect_timeout=20.0,
                max_chunk_retries=1,
                worker_respawns=3,
            ),
        )
        plan = FaultPlan.single("distributed.send_chunk", "disconnect", count=10_000)
        with chaos.active_plan(plan):
            with pytest.raises(PoisonChunkError) as excinfo:
                ExperimentRunner(backend=backend).run(spec)
        error = excinfo.value
        assert error.attempts == 2  # max_chunk_retries=1 allows one retry
        assert error.diagnostics[error.index]
        assert any("ConnectionError" in reason for reason in error.diagnostics[error.index])
        assert _shm_segments() == []


class TestGracefulDegradation:
    def test_no_workers_degrades_down_the_ladder(self, tmp_path):
        """With no worker ever connecting, the run finishes on the fallback."""
        spec = _cheap_spec(seed=9)
        expected = _serial_bytes(tmp_path, spec)
        backend = DistributedBackend(
            spawn_workers=False,
            resilience=ResilienceConfig.from_env(
                {}, connect_timeout=0.3, fallback_backend="serial"
            ),
        )
        store = ResultStore(tmp_path / "dist")
        ExperimentRunner(store=store, backend=backend).run(spec, save_as="exp")
        assert backend.last_execution_path == "serial"
        assert store.path_for("exp").read_text() == expected
        assert _shm_segments() == []

    def test_stall_without_fallback_raises(self):
        backend = DistributedBackend(
            spawn_workers=False,
            resilience=ResilienceConfig.from_env(
                {}, connect_timeout=0.2, fallback_backend=""
            ),
        )
        with pytest.raises(RuntimeError, match="stalled"):
            ExperimentRunner(backend=backend).run(_cheap_spec(seed=10))


class TestSilentCorruption:
    """Closure for the ``corrupt`` kind: a single flipped bit injected at
    any durable-write site is always *detected* — never silently served —
    and recovery converges back to the fault-free serial bytes."""

    def test_corrupt_store_write_is_detected_and_repaired(self, tmp_path):
        """Silent bit-rot in a stored envelope can never be loaded.

        The corrupt fault flips one bit of the committed result file and
        the write still "succeeds" — the failure mode checksums exist
        for.  Loading fails the digest, fsck flags exactly the damaged
        file (zero false positives), and the rerun after quarantine
        stores the fault-free serial bytes.
        """
        spec = _cheap_spec(seed=13)
        expected = _serial_bytes(tmp_path, spec)
        store = ResultStore(tmp_path / "flat")
        with chaos.active_plan(FaultPlan.single("store.write", "corrupt")) as scope:
            ExperimentRunner(store=store).run(spec, save_as="exp")
        assert ("store.write", "corrupt") in scope.fired
        with pytest.raises(IntegrityError, match="digest mismatch"):
            store.load("exp")
        report = fsck_store(tmp_path / "flat", quarantine=True)
        assert [issue.problem for issue in report.issues] == ["digest-mismatch"]
        assert report.issues[0].quarantined
        assert fsck_store(tmp_path / "flat").clean
        fresh = ResultStore(tmp_path / "flat")
        ExperimentRunner(store=fresh).run(spec, save_as="exp")
        assert fresh.path_for("exp").read_text() == expected
        assert _shm_segments() == []

    def test_corrupt_checkpoint_is_dropped_and_rerun(self, tmp_path):
        """A corrupted chunk checkpoint must rerun, not poison the resume.

        The plan corrupts the first chunk's checkpoint file and then
        errors the job at its third chunk.  The resubmission resumes only
        the chunk whose checksum frame still verifies (``last_resumed ==
        1``), silently reruns the corrupted one, and the final envelope
        is byte-identical to serial — a flipped bit can never smuggle
        wrong values into a resumed job.
        """
        spec = _cheap_spec(seed=14)
        expected = _serial_bytes(tmp_path, spec)
        service = ExperimentService(
            queue_dir=tmp_path / "queue", store_dir=tmp_path / "store"
        )
        plan = FaultPlan(
            faults=(
                FaultSpec(point="checkpoint.write", kind="corrupt", after=1, count=1),
                FaultSpec(point="service.chunk", kind="error", after=3, count=1),
            )
        )
        try:
            with chaos.active_plan(plan):
                service._dispatch(
                    {"op": "submit", "spec": spec.to_dict(), "name": "exp"}
                )
                failed = service.process_once()
            assert failed.state == "failed"
            # Both completed chunks were checkpointed; one carries the flip.
            kept = list((tmp_path / "queue" / "checkpoints").glob("*/chunk-*.pkl"))
            assert len(kept) == 2
            service._dispatch({"op": "submit", "spec": spec.to_dict(), "name": "exp"})
            assert service.drain() == 1
            assert service.checkpointed.last_resumed == 1  # intact chunk only
            assert service.store.path_for("exp").read_text() == expected
        finally:
            service.registry.close()
        assert _shm_segments() == []

    def test_corrupt_queue_persist_never_resurrects_the_job(self, tmp_path):
        """A corrupted job file is refused on reload and pinned by fsck."""
        queue = JobQueue(tmp_path / "queue")
        with chaos.active_plan(FaultPlan.single("queue.persist", "corrupt")) as scope:
            queue.submit(_cheap_spec(seed=15).to_dict())
        assert ("queue.persist", "corrupt") in scope.fired
        # A reloading daemon refuses the tampered record entirely...
        assert JobQueue(tmp_path / "queue").jobs() == []
        # ...and fsck flags exactly that file, then repairs the tree.
        report = fsck_queue(tmp_path / "queue", quarantine=True)
        assert len(report.issues) == 1
        assert report.issues[0].problem in ("digest-mismatch", "unreadable")
        assert fsck_queue(tmp_path / "queue").clean


class TestFaultToleranceInProcess:
    def test_shared_attach_fault_degrades_to_retraining(self):
        """An injected attach failure must fall back to local training."""
        from repro.experiments.cache import VictimCache
        from repro.experiments.shared import SharedArrayManifest, SharedVictimManifest

        cache = VictimCache()
        bogus = SharedVictimManifest(
            model_key="resnet20",
            seed=0,
            training_epochs=None,
            state=SharedArrayManifest(shm_name="repro_victim_missing", total_bytes=1, arrays=()),
        )
        with chaos.active_plan(FaultPlan.single("shared.attach", "error", count=10)):
            assert cache._from_manifest(None, None, bogus) is None

    def test_queue_persist_fault_keeps_previous_job_file(self, tmp_path):
        from repro.experiments.queue import JobQueue

        queue = JobQueue(tmp_path / "queue")
        job, _ = queue.submit(_cheap_spec(seed=12).to_dict())
        before = json.loads(queue._path_for(job.job_id).read_text())
        with chaos.active_plan(FaultPlan.single("queue.persist", "partial_write")):
            with pytest.raises(OSError):
                queue.claim()
        # The job file on disk still parses and holds the pre-claim state.
        assert json.loads(queue._path_for(job.job_id).read_text()) == before
        # A reloaded queue sees a consistent (pending) job and can claim it.
        recovered = JobQueue(tmp_path / "queue")
        assert recovered.get(job.job_id).state == "pending"
        assert recovered.claim().job_id == job.job_id
