"""JobQueue: dedup, FIFO, persistence, and requeue-exactly-once recovery."""

import json

from repro.experiments import ComparisonSpec, DefenseMatrixSpec, JobQueue
from repro.experiments.queue import Job


def _payload(seed=0):
    return ComparisonSpec(seed=seed).to_dict()


class TestJobRoundTrip:
    def test_job_dict_round_trip(self):
        job = Job(job_id="abc", name="x", spec=_payload(), state="running",
                  sequence=3, attempts=2, requeued=True, error="boom")
        assert Job.from_dict(job.to_dict()) == job


class TestSubmit:
    def test_submit_persists_and_names(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, created = queue.submit(_payload())
        assert created
        assert job.state == "pending"
        assert job.name.startswith("comparison-")
        on_disk = json.loads((tmp_path / f"job-{job.job_id}.json").read_text())
        assert on_disk["spec"]["kind"] == "comparison"

    def test_duplicate_spec_deduplicates(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, created_first = queue.submit(_payload())
        second, created_second = queue.submit(_payload())
        assert created_first and not created_second
        assert second is first
        assert len(queue) == 1

    def test_different_specs_are_different_jobs(self, tmp_path):
        queue = JobQueue(tmp_path)
        a, _ = queue.submit(_payload(seed=1))
        b, _ = queue.submit(_payload(seed=2))
        assert a.job_id != b.job_id
        assert len(queue) == 2

    def test_done_job_still_deduplicates(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_payload())
        queue.claim()
        queue.complete(job.job_id)
        again, created = queue.submit(_payload())
        assert not created
        assert again.state == "done"

    def test_failed_job_is_reactivated(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_payload())
        queue.claim()
        queue.fail(job.job_id, "boom")
        again, created = queue.submit(_payload())
        assert created
        assert again.state == "pending"
        assert again.attempts == 0 and again.error is None


class TestClaimAndLifecycle:
    def test_claim_is_fifo(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, _ = queue.submit(_payload(seed=1))
        second, _ = queue.submit(_payload(seed=2))
        assert queue.claim().job_id == first.job_id
        assert queue.claim().job_id == second.job_id
        assert queue.claim() is None

    def test_cancel_only_pending(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_payload())
        assert queue.cancel(job.job_id)
        assert queue.get(job.job_id).state == "cancelled"
        running, _ = queue.submit(_payload(seed=9))
        queue.claim()
        assert not queue.cancel(running.job_id)  # running: not cancellable
        assert not queue.cancel("nonexistent")

    def test_counts(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, _ = queue.submit(_payload(seed=1))
        queue.submit(_payload(seed=2))
        queue.claim()  # claims the first submission
        queue.complete(first.job_id)
        counts = queue.counts()
        assert counts["pending"] == 1 and counts["done"] == 1


class TestPersistence:
    def test_restart_preserves_jobs_and_order(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, _ = queue.submit(DefenseMatrixSpec().to_dict())
        second, _ = queue.submit(_payload(seed=5))
        reloaded = JobQueue(tmp_path)
        assert [job.job_id for job in reloaded.jobs()] == [first.job_id, second.job_id]
        assert reloaded.claim().job_id == first.job_id

    def test_new_submissions_continue_the_sequence(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(_payload(seed=1))
        reloaded = JobQueue(tmp_path)
        later, _ = reloaded.submit(_payload(seed=2))
        assert later.sequence == 2

    def test_foreign_files_are_ignored(self, tmp_path):
        (tmp_path / "job-bogus.json").write_text("{not json")
        (tmp_path / "notes.txt").write_text("hello")
        queue = JobQueue(tmp_path)
        assert len(queue) == 0


class TestRecovery:
    def test_interrupted_running_job_requeued_exactly_once(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_payload())
        queue.claim()
        assert queue.get(job.job_id).state == "running"

        # Simulated daemon crash: a fresh queue sees the running job...
        crashed = JobQueue(tmp_path)
        report = crashed.recover()
        assert report["requeued"] == [job.job_id]
        recovered = crashed.get(job.job_id)
        assert recovered.state == "pending" and recovered.requeued

        # ...and it runs again. A second interruption fails it for good.
        crashed.claim()
        crashed_again = JobQueue(tmp_path)
        report = crashed_again.recover()
        assert report["failed"] == [job.job_id]
        assert crashed_again.get(job.job_id).state == "failed"

    def test_recover_leaves_other_states_alone(self, tmp_path):
        queue = JobQueue(tmp_path)
        pending, _ = queue.submit(_payload(seed=1))
        done, _ = queue.submit(_payload(seed=2))
        queue.claim()
        queue.claim()
        queue.complete(done.job_id)
        # restart: one running (pending's claim), one done
        reloaded = JobQueue(tmp_path)
        reloaded.recover()
        assert reloaded.get(done.job_id).state == "done"
        assert reloaded.get(pending.job_id).state == "pending"
