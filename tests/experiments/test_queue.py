"""JobQueue: dedup, FIFO, persistence, and requeue-exactly-once recovery."""

import json

import pytest

from repro.experiments import ComparisonSpec, DefenseMatrixSpec, JobQueue, QueueFullError
from repro.experiments.queue import Job, _job_checksum


def _payload(seed=0):
    return ComparisonSpec(seed=seed).to_dict()


class TestJobRoundTrip:
    def test_job_dict_round_trip(self):
        job = Job(job_id="abc", name="x", spec=_payload(), state="running",
                  sequence=3, attempts=2, requeued=True, error="boom")
        assert Job.from_dict(job.to_dict()) == job


class TestSubmit:
    def test_submit_persists_and_names(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, created = queue.submit(_payload())
        assert created
        assert job.state == "pending"
        assert job.name.startswith("comparison-")
        on_disk = json.loads((tmp_path / f"job-{job.job_id}.json").read_text())
        assert on_disk["spec"]["kind"] == "comparison"

    def test_duplicate_spec_deduplicates(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, created_first = queue.submit(_payload())
        second, created_second = queue.submit(_payload())
        assert created_first and not created_second
        assert second is first
        assert len(queue) == 1

    def test_duplicate_submission_updates_priority_and_deadline(self, tmp_path):
        # Deduplicated, not ignored: resubmitting is how an operator
        # raises a queued job's priority or attaches a deadline.
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_payload())
        assert job.priority == 0 and job.deadline is None
        again, created = queue.submit(_payload(), priority=5, deadline=1e12)
        assert not created and again is job
        assert job.priority == 5 and job.deadline == 1e12
        # The QoS update is persisted, not in-memory only.
        reloaded = JobQueue(tmp_path).get(job.job_id)
        assert reloaded.priority == 5 and reloaded.deadline == 1e12

    def test_different_specs_are_different_jobs(self, tmp_path):
        queue = JobQueue(tmp_path)
        a, _ = queue.submit(_payload(seed=1))
        b, _ = queue.submit(_payload(seed=2))
        assert a.job_id != b.job_id
        assert len(queue) == 2

    def test_done_job_still_deduplicates(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_payload())
        queue.claim()
        queue.complete(job.job_id)
        again, created = queue.submit(_payload())
        assert not created
        assert again.state == "done"

    def test_failed_job_is_reactivated(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_payload())
        queue.claim()
        queue.fail(job.job_id, "boom")
        again, created = queue.submit(_payload())
        assert created
        assert again.state == "pending"
        assert again.attempts == 0 and again.error is None


class TestAdmissionControl:
    def test_submit_past_the_bound_raises_queue_full(self, tmp_path):
        queue = JobQueue(tmp_path, max_pending=2)
        queue.submit(_payload(seed=1))
        queue.submit(_payload(seed=2))
        with pytest.raises(QueueFullError) as excinfo:
            queue.submit(_payload(seed=3))
        assert excinfo.value.pending == 2 and excinfo.value.max_pending == 2
        assert len(queue) == 2  # the shed job was never persisted

    def test_duplicate_submission_is_admitted_when_full(self, tmp_path):
        # Dedup resubmissions add no load: they must not be shed.
        queue = JobQueue(tmp_path, max_pending=1)
        job, _ = queue.submit(_payload(seed=1))
        again, created = queue.submit(_payload(seed=1))
        assert not created and again is job

    def test_claiming_frees_capacity(self, tmp_path):
        queue = JobQueue(tmp_path, max_pending=1)
        queue.submit(_payload(seed=1))
        queue.claim()
        job, created = queue.submit(_payload(seed=2))  # pending is empty again
        assert created and job.state == "pending"


class TestPriorityAndDeadline:
    def test_higher_priority_claims_first(self, tmp_path):
        queue = JobQueue(tmp_path)
        low, _ = queue.submit(_payload(seed=1), priority=0)
        high, _ = queue.submit(_payload(seed=2), priority=5)
        mid, _ = queue.submit(_payload(seed=3), priority=2)
        order = [queue.claim().job_id for _ in range(3)]
        assert order == [high.job_id, mid.job_id, low.job_id]

    def test_equal_priority_stays_fifo(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, _ = queue.submit(_payload(seed=1), priority=1)
        second, _ = queue.submit(_payload(seed=2), priority=1)
        assert queue.claim().job_id == first.job_id
        assert queue.claim().job_id == second.job_id

    def test_priority_survives_restart(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(_payload(seed=1), priority=0)
        high, _ = queue.submit(_payload(seed=2), priority=9)
        assert JobQueue(tmp_path).claim().job_id == high.job_id

    def test_expired_deadline_fails_fast_at_claim(self, tmp_path):
        now = [100.0]
        queue = JobQueue(tmp_path, clock=lambda: now[0])
        doomed, _ = queue.submit(_payload(seed=1), deadline=105.0)
        fine, _ = queue.submit(_payload(seed=2))
        now[0] = 110.0  # past doomed's absolute deadline
        claimed = queue.claim()
        assert claimed.job_id == fine.job_id
        failed = queue.get(doomed.job_id)
        assert failed.state == "failed"
        assert "deadline expired" in failed.error

    def test_unexpired_deadline_claims_normally(self, tmp_path):
        now = [100.0]
        queue = JobQueue(tmp_path, clock=lambda: now[0])
        job, _ = queue.submit(_payload(seed=1), deadline=105.0)
        assert queue.claim().job_id == job.job_id


class TestJobChecksums:
    def test_job_file_carries_checksum(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_payload())
        on_disk = json.loads((tmp_path / f"job-{job.job_id}.json").read_text())
        stored = on_disk.pop("sha256")
        assert stored == _job_checksum(on_disk)

    def test_corrupt_job_file_is_skipped_and_reported(self, tmp_path):
        queue = JobQueue(tmp_path)
        good, _ = queue.submit(_payload(seed=1))
        bad, _ = queue.submit(_payload(seed=2))
        path = tmp_path / f"job-{bad.job_id}.json"
        payload = json.loads(path.read_text())
        payload["name"] = "tampered"  # checksum no longer matches
        path.write_text(json.dumps(payload, indent=2))
        reloaded = JobQueue(tmp_path)
        assert [job.job_id for job in reloaded.jobs()] == [good.job_id]
        assert reloaded.corrupt_files == [path]

    def test_legacy_checksum_less_file_still_loads(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_payload())
        path = tmp_path / f"job-{job.job_id}.json"
        payload = json.loads(path.read_text())
        del payload["sha256"]
        path.write_text(json.dumps(payload, indent=2))
        reloaded = JobQueue(tmp_path)
        assert [j.job_id for j in reloaded.jobs()] == [job.job_id]
        assert reloaded.corrupt_files == []


class TestClaimAndLifecycle:
    def test_claim_is_fifo(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, _ = queue.submit(_payload(seed=1))
        second, _ = queue.submit(_payload(seed=2))
        assert queue.claim().job_id == first.job_id
        assert queue.claim().job_id == second.job_id
        assert queue.claim() is None

    def test_cancel_only_pending(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_payload())
        assert queue.cancel(job.job_id)
        assert queue.get(job.job_id).state == "cancelled"
        running, _ = queue.submit(_payload(seed=9))
        queue.claim()
        assert not queue.cancel(running.job_id)  # running: not cancellable
        assert not queue.cancel("nonexistent")

    def test_counts(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, _ = queue.submit(_payload(seed=1))
        queue.submit(_payload(seed=2))
        queue.claim()  # claims the first submission
        queue.complete(first.job_id)
        counts = queue.counts()
        assert counts["pending"] == 1 and counts["done"] == 1


class TestPersistence:
    def test_restart_preserves_jobs_and_order(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, _ = queue.submit(DefenseMatrixSpec().to_dict())
        second, _ = queue.submit(_payload(seed=5))
        reloaded = JobQueue(tmp_path)
        assert [job.job_id for job in reloaded.jobs()] == [first.job_id, second.job_id]
        assert reloaded.claim().job_id == first.job_id

    def test_new_submissions_continue_the_sequence(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(_payload(seed=1))
        reloaded = JobQueue(tmp_path)
        later, _ = reloaded.submit(_payload(seed=2))
        assert later.sequence == 2

    def test_foreign_files_are_ignored(self, tmp_path):
        (tmp_path / "job-bogus.json").write_text("{not json")
        (tmp_path / "notes.txt").write_text("hello")
        queue = JobQueue(tmp_path)
        assert len(queue) == 0


class TestRecovery:
    def test_interrupted_running_job_requeued_exactly_once(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(_payload())
        queue.claim()
        assert queue.get(job.job_id).state == "running"

        # Simulated daemon crash: a fresh queue sees the running job...
        crashed = JobQueue(tmp_path)
        report = crashed.recover()
        assert report["requeued"] == [job.job_id]
        recovered = crashed.get(job.job_id)
        assert recovered.state == "pending" and recovered.requeued

        # ...and it runs again. A second interruption fails it for good.
        crashed.claim()
        crashed_again = JobQueue(tmp_path)
        report = crashed_again.recover()
        assert report["failed"] == [job.job_id]
        assert crashed_again.get(job.job_id).state == "failed"

    def test_recover_leaves_other_states_alone(self, tmp_path):
        queue = JobQueue(tmp_path)
        pending, _ = queue.submit(_payload(seed=1))
        done, _ = queue.submit(_payload(seed=2))
        queue.claim()
        queue.claim()
        queue.complete(done.job_id)
        # restart: one running (pending's claim), one done
        reloaded = JobQueue(tmp_path)
        reloaded.recover()
        assert reloaded.get(done.job_id).state == "done"
        assert reloaded.get(pending.job_id).state == "pending"
