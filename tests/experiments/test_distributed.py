"""DistributedBackend: framing, task bookkeeping, and serial equivalence."""

import socket

import pytest

from repro.dram.geometry import DramGeometry
from repro.experiments import (
    DefenseMatrixSpec,
    ExperimentRunner,
    ResultStore,
    make_backend,
)
from repro.experiments.distributed import (
    MAX_CHUNK_REQUEUES,
    DistributedBackend,
    _RunState,
    recv_frame,
    send_frame,
)

SMALL_GEOMETRY = DramGeometry(num_banks=1, rows_per_bank=24, cols_per_row=128)


class TestFraming:
    def test_frame_round_trip(self):
        left, right = socket.socketpair()
        try:
            payload = {"op": "task", "units": [{"seed": 1}], "blob": b"\x00" * 4096}
            send_frame(left, payload)
            send_frame(left, "second")
            assert recv_frame(right) == payload
            assert recv_frame(right) == "second"
        finally:
            left.close()
            right.close()

    def test_recv_frame_raises_on_closed_peer(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(ConnectionError):
                recv_frame(right)
        finally:
            right.close()


class TestRunState:
    def test_requeue_bounds(self):
        state = _RunState([["u0"], ["u1"]])
        index, chunk = state.tasks.popleft()
        for _ in range(MAX_CHUNK_REQUEUES):
            state.requeue(index, chunk)
            assert state.error is None
            assert state.tasks.popleft() == (index, chunk)
        state.requeue(index, chunk)  # one past the limit
        assert isinstance(state.error, RuntimeError)
        assert state.finished()

    def test_requeue_after_result_is_a_noop(self):
        state = _RunState([["u0"]])
        index, chunk = state.tasks.popleft()
        state.results[index] = ["done"]
        state.requeue(index, chunk)
        assert not state.tasks and state.error is None
        assert state.finished()


class TestFactory:
    def test_make_backend_distributed(self):
        backend = make_backend("distributed", max_workers=3)
        assert isinstance(backend, DistributedBackend)
        assert backend.num_workers == 3

    def test_unknown_backend_mentions_distributed(self):
        with pytest.raises(ValueError, match="distributed"):
            make_backend("carrier-pigeon")


@pytest.mark.slow
class TestSerialEquivalence:
    def test_distributed_matches_serial(self, tmp_path):
        spec = DefenseMatrixSpec(geometry=SMALL_GEOMETRY)
        serial_store = ResultStore(tmp_path / "serial")
        ExperimentRunner(store=serial_store).run(spec, save_as="exp")

        dist_store = ResultStore(tmp_path / "dist")
        runner = ExperimentRunner(
            store=dist_store, backend=DistributedBackend(num_workers=2)
        )
        runner.run(spec, save_as="exp")

        assert (
            dist_store.path_for("exp").read_text()
            == serial_store.path_for("exp").read_text()
        )
