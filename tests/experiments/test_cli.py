"""The ``python -m repro`` command line: list / run / report."""

import json

import pytest

from repro.experiments.cli import main


class TestList:
    def test_lists_kinds_and_results(self, tmp_path, capsys):
        assert main(["list", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        for kind in ("comparison", "defense_matrix", "flip_sweep", "chip_profile", "profile_density"):
            assert kind in out
        assert "(none)" in out


class TestRunAndReport:
    def test_run_stores_and_report_renders(self, tmp_path, capsys):
        # flip_sweep via a spec file (small geometry keeps this fast)
        spec_payload = {
            "kind": "flip_sweep",
            "geometry": {"num_banks": 1, "rows_per_bank": 24, "cols_per_row": 128},
            "chip_seed": 3,
            "hammer_counts": [50000, 100000],
            "open_cycles": [5000000],
            "max_rows_per_bank": 4,
        }
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec_payload))

        store_dir = tmp_path / "results"
        assert main([
            "run", "--spec", str(spec_file), "--store", str(store_dir), "--save-as", "sweep",
        ]) == 0
        out = capsys.readouterr().out
        assert "stored result 'sweep'" in out
        assert (store_dir / "sweep.json").is_file()

        assert main(["list", "--store", str(store_dir)]) == 0
        assert "sweep" in capsys.readouterr().out

        assert main(["report", "sweep", "--store", str(store_dir)]) == 0
        report = capsys.readouterr().out
        assert "flip sweep" in report
        assert "rowpress_to_rowhammer_ratio" in report

    def test_report_missing_result_fails(self, tmp_path, capsys):
        assert main(["report", "ghost", "--store", str(tmp_path)]) == 1
        assert "no stored result" in capsys.readouterr().err

    def test_report_non_envelope_json_fails_cleanly(self, tmp_path, capsys):
        (tmp_path / "legacy.json").write_text(json.dumps({"rows": []}))
        assert main(["report", "legacy", "--store", str(tmp_path)]) == 1
        assert "cannot load 'legacy'" in capsys.readouterr().err

    def test_run_without_kind_or_spec_fails(self, tmp_path, capsys):
        assert main(["run", "--store", str(tmp_path)]) == 2
        assert "provide an experiment kind" in capsys.readouterr().err

    def test_targeted_source_equals_target_fails_cleanly(self, tmp_path, capsys):
        assert main([
            "run", "comparison", "--objective", "targeted",
            "--source-class", "2", "--target-class", "2",
            "--store", str(tmp_path),
        ]) == 2
        assert "must differ" in capsys.readouterr().err


class TestPackageSurface:
    def test_lazy_top_level_exports(self):
        import repro

        for name in (
            "prepare_victim",
            "compare_mechanisms_for_model",
            "ComparisonConfig",
            "get_spec",
            "ComparisonSpec",
            "ExperimentRunner",
            "ResultStore",
            "VictimCache",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_module_entry_point_exists(self):
        import repro.__main__  # noqa: F401 - importable means `python -m repro` resolves
