"""VictimCache hit/miss semantics (training counted via monkeypatching)."""

import numpy as np
import pytest

import repro.core.comparison as comparison
from repro.experiments import ExperimentContext, VictimCache, VictimKey
from repro.models.registry import get_spec


@pytest.fixture
def counting_prepare(monkeypatch):
    """Replace surrogate training with a cheap counted stand-in."""
    calls = []

    def fake_prepare(spec, seed=0, training_epochs=None):
        calls.append((spec.key, seed, training_epochs))
        model = object()
        dataset = object()
        state = {"w": np.zeros(1)}
        return model, dataset, state

    monkeypatch.setattr(comparison, "prepare_victim", fake_prepare)
    return calls


class TestVictimCache:
    def test_miss_trains_then_hits(self, counting_prepare):
        cache = VictimCache()
        spec = get_spec("resnet20")
        first = cache.get_or_prepare(spec, seed=1)
        assert cache.stats() == {
            "hits": 0, "misses": 1, "entries": 1, "shared_attaches": 0, "evictions": 0,
        }
        second = cache.get_or_prepare(spec, seed=1)
        assert second is first
        assert cache.stats() == {
            "hits": 1, "misses": 1, "entries": 1, "shared_attaches": 0, "evictions": 0,
        }
        assert counting_prepare == [("resnet20", 1, None)]

    def test_key_includes_seed_and_epochs(self, counting_prepare):
        cache = VictimCache()
        spec = get_spec("resnet20")
        cache.get_or_prepare(spec, seed=1)
        cache.get_or_prepare(spec, seed=2)
        cache.get_or_prepare(spec, seed=1, training_epochs=3)
        assert len(counting_prepare) == 3
        assert cache.stats()["entries"] == 3
        assert VictimKey("resnet20", 1, None) in cache
        assert VictimKey("resnet20", 3, None) not in cache

    def test_key_includes_model(self, counting_prepare):
        cache = VictimCache()
        cache.get_or_prepare_by_key("resnet20", seed=1)
        cache.get_or_prepare_by_key("m11", seed=1)
        assert [call[0] for call in counting_prepare] == ["resnet20", "m11"]

    def test_clear_forces_retraining(self, counting_prepare):
        cache = VictimCache()
        cache.get_or_prepare_by_key("resnet20")
        cache.clear()
        cache.get_or_prepare_by_key("resnet20")
        assert len(counting_prepare) == 2

    def test_shared_across_experiments_via_context(self, counting_prepare):
        context = ExperimentContext()
        context.victims.get_or_prepare_by_key("resnet20", seed=5)
        # a second "experiment" using the same context reuses the victim
        context.victims.get_or_prepare_by_key("resnet20", seed=5)
        assert len(counting_prepare) == 1


class TestBoundedCache:
    def test_lru_eviction_at_max_entries(self, counting_prepare):
        cache = VictimCache(max_entries=2)
        cache.get_or_prepare_by_key("resnet20", seed=1)
        cache.get_or_prepare_by_key("resnet20", seed=2)
        cache.get_or_prepare_by_key("resnet20", seed=1)  # touch: seed=2 is LRU
        cache.get_or_prepare_by_key("resnet20", seed=3)
        assert VictimKey("resnet20", 2, None) not in cache
        assert VictimKey("resnet20", 1, None) in cache
        assert cache.stats()["evictions"] == 1
        assert cache.stats()["entries"] == 2

    def test_evicted_victim_retrains_on_next_miss(self, counting_prepare):
        cache = VictimCache(max_entries=1)
        cache.get_or_prepare_by_key("resnet20", seed=1)
        cache.get_or_prepare_by_key("resnet20", seed=2)  # evicts seed=1
        cache.get_or_prepare_by_key("resnet20", seed=1)  # deterministic retrain
        assert [call[1] for call in counting_prepare] == [1, 2, 1]

    def test_unbounded_by_default(self, counting_prepare):
        cache = VictimCache()
        for seed in range(10):
            cache.get_or_prepare_by_key("resnet20", seed=seed)
        assert cache.stats() == {
            "hits": 0, "misses": 10, "entries": 10,
            "shared_attaches": 0, "evictions": 0,
        }


class TestRegistryAttachment:
    def test_miss_attaches_from_registry_instead_of_training(
        self, counting_prepare, monkeypatch
    ):
        from repro.experiments import VictimRegistry

        # The fake clean state cannot be loaded into a real model; stand in
        # for the (deterministic) rebuild step as well.
        monkeypatch.setattr(
            VictimCache,
            "_materialize",
            lambda self, spec, key, state: (object(), object(), state),
        )
        with VictimRegistry() as registry:
            warm = VictimCache()
            warm.attach_registry(registry)
            warm.get_or_prepare_by_key("resnet20", seed=1)  # trains + publishes
            assert len(registry) == 1

            cold = VictimCache()
            cold.attach_registry(registry)
            cold.get_or_prepare_by_key("resnet20", seed=1)
            assert cold.stats()["misses"] == 0
            assert cold.stats()["shared_attaches"] == 1
            assert len(counting_prepare) == 1  # only the warm cache trained
            cold.clear()

    def test_stale_manifest_falls_back_to_training(self, counting_prepare):
        from repro.experiments import VictimRegistry

        key = VictimKey("resnet20", 1, None)
        with VictimRegistry() as registry:
            publisher = VictimCache()
            publisher.attach_registry(registry)
            publisher.get_or_prepare_by_key("resnet20", seed=1)
            manifest = registry.get(key)
            registry.evict(key)  # segment unlinked; manifest now dangles

            stale = VictimCache()
            # Attaching the dangling manifest misses cleanly...
            assert stale._from_manifest(get_spec("resnet20"), key, manifest) is None
            # ...so a full lookup falls through to a deterministic retrain.
            stale.seed_shared([manifest])
            stale.get_or_prepare_by_key("resnet20", seed=1)
            assert stale.stats()["misses"] == 1
            assert len(counting_prepare) == 2


class TestCheckout:
    def test_checkout_restores_clean_state(self):
        restored = []

        class FakeModel:
            def load_state_dict(self, state):
                restored.append(state)

        cache = VictimCache()
        key = VictimKey("resnet20", 0, None)
        clean = {"w": np.ones(2)}
        cache._victims[key] = (FakeModel(), object(), clean)
        model, _, state = cache.checkout("resnet20", seed=0)
        assert restored == [clean]
        assert state is clean


class TestContextMemo:
    def test_memo_builds_once(self):
        context = ExperimentContext()
        built = []
        for _ in range(3):
            value = context.memo("key", lambda: built.append(1) or "artefact")
        assert value == "artefact"
        assert built == [1]

    def test_clear_drops_memo(self):
        context = ExperimentContext()
        context.memo("key", lambda: "first")
        context.clear()
        assert context.memo("key", lambda: "second") == "second"
