"""Tests for the exploratory RowPress-aware open-window monitor."""

import pytest

from repro.defenses import build_defense
from repro.defenses.press_aware import OpenWindowMonitorDefense
from repro.dram.chip import DramChip
from repro.dram.controller import MemoryController
from repro.dram.geometry import DramGeometry
from repro.dram.vulnerability import VulnerabilityParameters
from repro.faults.rowpress import RowPressAttack, RowPressConfig


@pytest.fixture
def chip():
    params = VulnerabilityParameters(rh_density=0.05, rp_density=0.25)
    return DramChip(
        DramGeometry(num_banks=1, rows_per_bank=32, cols_per_row=512),
        vulnerability_parameters=params,
        seed=7,
    )


class TestOpenWindowAccounting:
    def test_accumulates_open_time_and_triggers(self):
        defense = OpenWindowMonitorDefense(open_cycles_threshold=1_000_000)
        assert defense.on_precharge(0, 5, 400_000, cycle=0) == []
        assert defense.accumulated_open_cycles(0, 5) == 400_000
        victims = defense.on_precharge(0, 5, 700_000, cycle=0)
        assert victims == [4, 6]
        assert defense.accumulated_open_cycles(0, 5) == 0
        assert defense.stats.triggers == 1

    def test_activations_alone_never_trigger(self):
        defense = OpenWindowMonitorDefense(open_cycles_threshold=1_000)
        assert defense.on_activations(0, 5, 1_000_000, cycle=0) == []

    def test_zero_open_window_ignored(self):
        defense = OpenWindowMonitorDefense(open_cycles_threshold=1_000)
        assert defense.on_precharge(0, 5, 0, cycle=0) == []
        assert defense.accumulated_open_cycles(0, 5) == 0

    def test_table_eviction_keeps_most_exposed_rows(self):
        defense = OpenWindowMonitorDefense(open_cycles_threshold=10_000_000, table_size=2)
        defense.on_precharge(0, 1, 5_000_000, cycle=0)
        defense.on_precharge(0, 2, 100_000, cycle=0)
        defense.on_precharge(0, 3, 200_000, cycle=0)  # evicts the smallest entry (row 2)
        assert defense.accumulated_open_cycles(0, 1) == 5_000_000
        assert defense.accumulated_open_cycles(0, 2) == 0

    def test_reset(self):
        defense = OpenWindowMonitorDefense(open_cycles_threshold=1_000)
        defense.on_precharge(0, 5, 500, cycle=0)
        defense.reset()
        assert defense.accumulated_open_cycles(0, 5) == 0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            OpenWindowMonitorDefense(open_cycles_threshold=0)

    def test_registry_exposes_monitor(self):
        assert isinstance(build_defense("open_window_monitor"), OpenWindowMonitorDefense)


class TestAgainstRowPressAttack:
    def test_monitor_limits_repeated_short_window_rowpress(self, chip):
        """Accumulated short windows are healed by NRRs, reducing flips."""
        config = RowPressConfig(pressed_row=16, open_cycles=5_000_000, repetitions=16)

        undefended = MemoryController(chip)
        baseline = RowPressAttack(undefended, config).run()

        chip.reset()
        defense = OpenWindowMonitorDefense(open_cycles_threshold=8_000_000)
        defended_controller = MemoryController(chip, defenses=[defense])
        defended = RowPressAttack(defended_controller, config).run()

        assert baseline.num_flips > 0
        assert defended.num_flips < baseline.num_flips
        assert defended.nrr_issued > 0

    def test_monitor_does_not_affect_rowhammer(self, chip):
        from repro.faults.rowhammer import RowHammerAttack, RowHammerConfig

        config = RowHammerConfig(victim_row=8, hammer_count=700_000)
        baseline = RowHammerAttack(MemoryController(chip), config).run()
        chip.reset()
        defense = OpenWindowMonitorDefense(open_cycles_threshold=8_000_000)
        defended = RowHammerAttack(MemoryController(chip, defenses=[defense]), config).run()
        # RowHammer's PRE commands carry negligible open windows, so the
        # monitor never interferes (flip counts identical).
        assert defended.num_flips == baseline.num_flips
        assert defense.stats.triggers == 0
