"""Unit tests for the individual mitigation mechanisms."""

import pytest

from repro.defenses import build_defense
from repro.defenses.base import DefenseMechanism
from repro.defenses.cbt import CounterBasedTreeDefense
from repro.defenses.graphene import GrapheneDefense
from repro.defenses.hydra import HydraDefense
from repro.defenses.para import ParaDefense
from repro.defenses.trr import TargetRowRefreshDefense


class TestBaseBehaviour:
    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            GrapheneDefense(mac_threshold=0)
        with pytest.raises(ValueError):
            TargetRowRefreshDefense(table_size=0)
        with pytest.raises(ValueError):
            HydraDefense(group_size=0)

    def test_victims_of_blast_radius(self):
        defense = GrapheneDefense(mac_threshold=10, blast_radius=2)
        assert sorted(defense.victims_of(10)) == [8, 9, 11, 12]

    def test_observation_granularity_bounded_by_threshold(self):
        defense = GrapheneDefense(mac_threshold=4096)
        assert 0 < defense.observation_granularity() <= 4096

    def test_negative_count_rejected(self):
        defense = GrapheneDefense(mac_threshold=10)
        with pytest.raises(ValueError):
            defense.on_activations(0, 1, -1, 0)

    def test_registry_builder(self):
        for name in ("trr", "graphene", "cbt", "para", "hydra"):
            assert isinstance(build_defense(name), DefenseMechanism)
        with pytest.raises(KeyError):
            build_defense("nonexistent")


def drive(defense, bank, row, total, chunk):
    """Feed activations in chunks, returning all NRR victim rows observed."""
    victims = []
    remaining = total
    while remaining > 0:
        batch = min(chunk, remaining)
        victims.extend(defense.on_activations(bank, row, batch, cycle=0))
        remaining -= batch
    return victims


class TestTRR:
    def test_triggers_at_threshold(self):
        defense = TargetRowRefreshDefense(mac_threshold=1000, table_size=4)
        victims = drive(defense, 0, 10, 2500, 250)
        assert victims.count(9) == 2 and victims.count(11) == 2

    def test_table_eviction_keeps_hot_rows(self):
        defense = TargetRowRefreshDefense(mac_threshold=1000, table_size=2)
        drive(defense, 0, 1, 500, 100)
        drive(defense, 0, 2, 400, 100)
        drive(defense, 0, 3, 50, 50)  # evicts the least active entry
        tracked = dict(defense.tracked_rows(0))
        assert 1 in tracked
        assert len(tracked) <= 2

    def test_single_activation_never_triggers(self):
        defense = TargetRowRefreshDefense(mac_threshold=1000)
        assert defense.on_activations(0, 5, 1, 0) == []

    def test_reset(self):
        defense = TargetRowRefreshDefense(mac_threshold=10)
        drive(defense, 0, 1, 20, 5)
        defense.reset()
        assert defense.tracked_rows(0) == []
        assert defense.stats.triggers == 0


class TestGraphene:
    def test_triggers_at_threshold(self):
        defense = GrapheneDefense(mac_threshold=1000, table_size=8)
        victims = drive(defense, 0, 7, 1200, 100)
        assert 6 in victims and 8 in victims

    def test_estimate_tracks_heavy_hitter(self):
        defense = GrapheneDefense(mac_threshold=100_000, table_size=4)
        drive(defense, 0, 3, 5000, 500)
        assert defense.estimated_count(0, 3) >= 5000

    def test_per_bank_isolation(self):
        defense = GrapheneDefense(mac_threshold=1000)
        drive(defense, 0, 3, 900, 100)
        assert defense.estimated_count(1, 3) == 0

    def test_many_distinct_rows_do_not_trigger(self):
        defense = GrapheneDefense(mac_threshold=1000, table_size=8)
        victims = []
        for row in range(200):
            victims.extend(defense.on_activations(0, row, 10, 0))
        assert victims == []


class TestCBT:
    def test_triggers_and_subdivides(self):
        defense = CounterBasedTreeDefense(mac_threshold=1000, num_rows=64, split_threshold=100)
        victims = drive(defense, 0, 20, 1500, 100)
        assert victims  # some NRR issued
        assert defense.leaf_count(0) > 1

    def test_row_beyond_coverage_grows_tree(self):
        defense = CounterBasedTreeDefense(mac_threshold=100, num_rows=16)
        defense.on_activations(0, 64, 10, 0)
        assert defense.num_rows >= 65

    def test_reset(self):
        defense = CounterBasedTreeDefense(mac_threshold=100, num_rows=16)
        drive(defense, 0, 3, 200, 50)
        defense.reset()
        assert defense.leaf_count(0) == 1


class TestPARA:
    def test_probability_zero_never_triggers(self):
        defense = ParaDefense(refresh_probability=0.0, seed=0)
        assert drive(defense, 0, 4, 100_000, 1000) == []

    def test_high_activation_count_triggers_with_high_probability(self):
        defense = ParaDefense(refresh_probability=0.001, seed=0)
        victims = drive(defense, 0, 4, 100_000, 1000)
        assert len(victims) > 0

    def test_expected_triggers(self):
        defense = ParaDefense(refresh_probability=0.001)
        assert defense.expected_triggers(10_000) == pytest.approx(10.0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            ParaDefense(refresh_probability=1.5)


class TestHydra:
    def test_group_counter_expands_to_row_counters(self):
        defense = HydraDefense(mac_threshold=1000, group_size=8, group_threshold=100)
        drive(defense, 0, 12, 150, 50)
        assert defense.is_group_expanded(0, 12)
        assert defense.row_counter(0, 12) > 0

    def test_triggers_after_expansion(self):
        defense = HydraDefense(mac_threshold=1000, group_size=8, group_threshold=100)
        victims = drive(defense, 0, 12, 2500, 100)
        assert 11 in victims and 13 in victims

    def test_cold_group_does_not_expand(self):
        defense = HydraDefense(mac_threshold=1000, group_size=8, group_threshold=1000)
        drive(defense, 0, 12, 100, 10)
        assert not defense.is_group_expanded(0, 12)

    def test_reset(self):
        defense = HydraDefense(mac_threshold=100, group_size=8, group_threshold=10)
        drive(defense, 0, 12, 500, 50)
        defense.reset()
        assert not defense.is_group_expanded(0, 12)
        assert defense.row_counter(0, 12) == 0
