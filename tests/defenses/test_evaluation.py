"""Integration tests: defenses against the actual fault injectors.

These reproduce the paper's Section III motivation at test scale: every
counter-based mechanism mitigates a RowHammer attack but lets an equivalent
RowPress attack through untouched.
"""

import pytest

from repro.defenses import GrapheneDefense, HydraDefense, TargetRowRefreshDefense
from repro.defenses.evaluation import evaluate_defense, evaluate_defense_matrix
from repro.dram.chip import DramChip
from repro.dram.geometry import DramGeometry
from repro.dram.vulnerability import VulnerabilityParameters
from repro.faults.rowhammer import RowHammerConfig
from repro.faults.rowpress import RowPressConfig


@pytest.fixture
def chip():
    params = VulnerabilityParameters(rh_density=0.05, rp_density=0.25)
    return DramChip(
        DramGeometry(num_banks=1, rows_per_bank=32, cols_per_row=512),
        vulnerability_parameters=params,
        seed=7,
    )


RH_CONFIG = RowHammerConfig(bank=0, victim_row=8, hammer_count=700_000)
RP_CONFIG = RowPressConfig(bank=0, pressed_row=16, open_cycles=80_000_000)


class TestEvaluateDefense:
    def test_graphene_mitigates_rowhammer(self, chip):
        result = evaluate_defense(chip, GrapheneDefense(mac_threshold=4096), "rowhammer",
                                  rowhammer_config=RH_CONFIG)
        assert result.flips_without_defense > 0
        assert result.flips_with_defense == 0
        assert result.mitigated
        assert result.mitigation_fraction == 1.0
        assert result.nrr_issued > 0

    def test_graphene_blind_to_rowpress(self, chip):
        result = evaluate_defense(chip, GrapheneDefense(mac_threshold=4096), "rowpress",
                                  rowpress_config=RP_CONFIG)
        assert result.flips_without_defense > 0
        assert result.flips_with_defense == result.flips_without_defense
        assert not result.mitigated
        assert result.triggers == 0

    def test_trr_and_hydra_follow_same_pattern(self, chip):
        for defense in (TargetRowRefreshDefense(mac_threshold=4096),
                        HydraDefense(mac_threshold=2048, group_size=8, group_threshold=256)):
            rowhammer = evaluate_defense(chip, defense, "rowhammer", rowhammer_config=RH_CONFIG)
            defense.reset()
            rowpress = evaluate_defense(chip, defense, "rowpress", rowpress_config=RP_CONFIG)
            assert rowhammer.mitigation_fraction >= 0.9
            assert rowpress.mitigation_fraction == 0.0

    def test_mitigation_fraction_nan_when_nothing_to_mitigate(self):
        import math

        from repro.defenses.evaluation import DefenseEvaluationResult

        result = DefenseEvaluationResult(
            defense_name="TRR", mechanism="rowhammer",
            flips_without_defense=0, flips_with_defense=0, nrr_issued=0, triggers=0,
        )
        assert math.isnan(result.mitigation_fraction)
        assert not result.mitigated
        assert math.isnan(result.as_dict()["mitigation_fraction"])

    def test_unknown_mechanism_rejected(self, chip):
        with pytest.raises(ValueError):
            evaluate_defense(chip, GrapheneDefense(), "rowsmash")

    def test_as_dict_round_trip(self, chip):
        result = evaluate_defense(chip, GrapheneDefense(mac_threshold=4096), "rowhammer",
                                  rowhammer_config=RH_CONFIG)
        payload = result.as_dict()
        assert payload["defense"] == "Graphene"
        assert payload["mechanism"] == "rowhammer"
        assert payload["mitigated"] is True


class TestEvaluateMatrix:
    def test_matrix_covers_all_defenses_and_mechanisms(self, chip):
        defenses = {
            "graphene": GrapheneDefense(mac_threshold=4096),
            "trr": TargetRowRefreshDefense(mac_threshold=4096),
        }
        matrix = evaluate_defense_matrix(chip, defenses,
                                         rowhammer_config=RH_CONFIG, rowpress_config=RP_CONFIG)
        assert set(matrix) == {"graphene", "trr"}
        for row in matrix.values():
            assert set(row) == {"rowhammer", "rowpress"}
            assert row["rowhammer"].mitigation_fraction > row["rowpress"].mitigation_fraction
