"""Tests for metrics, table building and figure series."""

import numpy as np
import pytest

from repro.analysis.figures import build_fig6_series, build_fig7_series, curve_steepness, render_ascii_curve
from repro.analysis.metrics import equal_time_flip_ratio, flips_reduction_factor, summarize_takeaways
from repro.analysis.tables import render_table, table1_from_comparisons
from repro.core.comparison import MechanismOutcome, ModelComparisonResult
from repro.core.results import AttackResult
from repro.faults.sweep import FlipCurve


def outcome(mechanism, flips, accuracy_after=10.0, curve=None):
    result = AttackResult(
        model_name="toy", mechanism=mechanism, accuracy_before=90.0,
        accuracy_after=accuracy_after, target_accuracy=15.0, num_flips=flips,
        converged=True,
        accuracy_curve=curve or ([90.0] + list(np.linspace(80, accuracy_after, flips))),
    )
    holder = MechanismOutcome(mechanism)
    holder.results.append(result)
    return holder


def comparison(key="resnet20", name="ResNet-20", rh_flips=36, rp_flips=8):
    return ModelComparisonResult(
        model_key=key, display_name=name, dataset_name="CIFAR-10",
        num_parameters=270_000, clean_accuracy=92.0, random_guess_accuracy=10.0,
        rowhammer=outcome("rowhammer", rh_flips),
        rowpress=outcome("rowpress", rp_flips),
    )


def flip_curves():
    # The last RowHammer point (8.5e5 HCs = 40 ms) and the last RowPress
    # point (9.6e7 cycles = 40 ms) land at exactly the same time, so the
    # equal-time comparison uses the final flip counts of both curves.
    rh = FlipCurve("rowhammer", np.array([4e5, 8.5e5]), np.array([250, 500]))
    rp = FlipCurve("rowpress", np.array([4.8e7, 9.6e7]), np.array([5000, 10000]))
    return rh, rp


class TestMetrics:
    def test_equal_time_ratio(self):
        rh, rp = flip_curves()
        assert equal_time_flip_ratio(rh, rp) == pytest.approx(20.0)

    def test_flips_reduction_factor(self):
        assert flips_reduction_factor(comparison()) == pytest.approx(4.5)

    def test_summarize_takeaways(self):
        rh, rp = flip_curves()
        comparisons = [comparison(), comparison("resnet32", "ResNet-32", 60, 11)]
        summary = summarize_takeaways(comparisons, rh, rp)
        assert summary["equal_time_flip_ratio"] == pytest.approx(20.0)
        assert summary["mean_flip_reduction"] == pytest.approx((4.5 + 60 / 11) / 2)
        assert summary["max_flip_reduction"] == pytest.approx(60 / 11)
        assert summary["all_models_converged"] == 1.0

    def test_summarize_takeaways_without_curves(self):
        summary = summarize_takeaways([comparison()])
        assert "equal_time_flip_ratio" not in summary
        assert "mean_flip_reduction" in summary


class TestTables:
    def test_rows_include_paper_reference(self):
        rows = table1_from_comparisons([comparison()])
        assert rows[0].paper_rowhammer_bit_flips == 36
        assert rows[0].paper_rowpress_bit_flips == 8
        assert rows[0].rowhammer_bit_flips == 36.0

    def test_unknown_model_key_has_no_paper_columns(self):
        rows = table1_from_comparisons([comparison(key="custom", name="Custom")])
        assert rows[0].paper_rowhammer_bit_flips is None

    def test_render_table_contains_all_rows_and_headers(self):
        rows = table1_from_comparisons([comparison(), comparison("resnet32", "ResNet-32", 60, 11)])
        text = render_table(rows)
        assert "ResNet-20" in text and "ResNet-32" in text
        assert "#Flips RH" in text and "Paper #Flips RP" in text
        assert len(text.splitlines()) == 2 + 2  # header + separator + 2 rows

    def test_render_table_without_paper_columns(self):
        text = render_table(table1_from_comparisons([comparison()]), include_paper=False)
        assert "Paper" not in text

    def test_row_as_dict_round_trip(self):
        row = table1_from_comparisons([comparison()])[0]
        payload = row.as_dict()
        assert payload["architecture"] == "ResNet-20"
        assert payload["flip_ratio"] == pytest.approx(4.5)


class TestFigures:
    def test_fig6_series_keys(self):
        rh, rp = flip_curves()
        series = build_fig6_series(rh, rp)
        assert set(series) == {
            "rowhammer_hammer_counts", "rowhammer_bitflips",
            "rowpress_cycles", "rowpress_bitflips",
        }
        assert series["rowpress_bitflips"][-1] == 10000

    def test_fig7_series_per_model_and_mechanism(self):
        series = build_fig7_series([comparison()])
        assert set(series) == {"ResNet-20"}
        assert set(series["ResNet-20"]) == {"rowhammer", "rowpress"}
        assert len(series["ResNet-20"]["rowpress"]) == 9

    def test_curve_steepness(self):
        assert curve_steepness([90, 50, 10]) == pytest.approx(40.0)
        assert curve_steepness([10.0]) == 0.0

    def test_render_ascii_curve(self):
        text = render_ascii_curve([90, 70, 50, 30, 10], width=20, height=5, title="demo")
        assert "demo" in text
        assert "*" in text

    def test_render_ascii_curve_empty(self):
        assert "empty" in render_ascii_curve([], title="x")
