"""Tests for the markdown / CSV / JSON report writers."""

import csv
import json

import numpy as np

from repro.analysis.reporting import (
    comparisons_to_csv,
    comparisons_to_markdown,
    write_comparison_report,
)
from repro.core.comparison import MechanismOutcome, ModelComparisonResult
from repro.core.results import AttackResult
from repro.faults.sweep import FlipCurve


def outcome(mechanism, flips, asr=None):
    holder = MechanismOutcome(mechanism)
    holder.results.append(
        AttackResult(
            model_name="toy", mechanism=mechanism, accuracy_before=90.0,
            accuracy_after=10.0, target_accuracy=15.0, num_flips=flips, converged=True,
            accuracy_curve=[90.0] + [10.0] * flips,
            objective_kind="untargeted" if asr is None else "targeted",
            attack_success_rate=asr,
        )
    )
    return holder


def comparisons():
    return [
        ModelComparisonResult(
            model_key="resnet20", display_name="ResNet-20", dataset_name="CIFAR-10",
            num_parameters=68786, clean_accuracy=92.0, random_guess_accuracy=10.0,
            rowhammer=outcome("rowhammer", 36), rowpress=outcome("rowpress", 8),
        ),
        ModelComparisonResult(
            model_key="m11", display_name="M11", dataset_name="Google Speech Command",
            num_parameters=28930, clean_accuracy=93.0, random_guess_accuracy=10.0,
            rowhammer=outcome("rowhammer", 68), rowpress=outcome("rowpress", 19),
        ),
    ]


class TestMarkdown:
    def test_contains_rows_and_takeaways(self):
        text = comparisons_to_markdown(comparisons())
        assert "ResNet-20" in text and "M11" in text
        assert "Takeaway summary" in text
        assert "mean_flip_reduction" in text

    def test_paper_columns_present(self):
        text = comparisons_to_markdown(comparisons())
        assert "| 36 | 8 |" in text  # paper reference flips for ResNet-20

    def test_asr_columns(self):
        """Targeted runs render their ASR; untargeted runs render '-'."""
        untargeted = comparisons()[0]
        line = next(
            l for l in comparisons_to_markdown([untargeted]).splitlines() if "ResNet-20" in l
        )
        assert "| - | - |" in line  # no ASR notion for untargeted runs

        targeted = ModelComparisonResult(
            model_key="resnet20", display_name="ResNet-20", dataset_name="CIFAR-10",
            num_parameters=68786, clean_accuracy=92.0, random_guess_accuracy=10.0,
            rowhammer=outcome("rowhammer", 12, asr=75.0),
            rowpress=outcome("rowpress", 4, asr=100.0),
        )
        line = next(
            l for l in comparisons_to_markdown([targeted]).splitlines() if "ResNet-20" in l
        )
        assert "| 75.0 | 100.0 |" in line

    def test_undefined_flip_ratio_rendered_as_dash(self):
        rows = [
            ModelComparisonResult(
                model_key="resnet20", display_name="ResNet-20", dataset_name="CIFAR-10",
                num_parameters=68786, clean_accuracy=92.0, random_guess_accuracy=10.0,
                rowhammer=outcome("rowhammer", 0), rowpress=outcome("rowpress", 0),
            )
        ]
        assert np.isnan(rows[0].flip_ratio)
        markdown = comparisons_to_markdown(rows)
        row_line = next(line for line in markdown.splitlines() if "ResNet-20" in line)
        assert "| - |" in row_line
        assert "nan" not in row_line


class TestCsv:
    def test_round_trips_through_csv_reader(self):
        text = comparisons_to_csv(comparisons())
        rows = list(csv.DictReader(text.splitlines()))
        assert len(rows) == 2
        assert rows[0]["architecture"] == "ResNet-20"
        assert float(rows[0]["flip_ratio"]) == 4.5

    def test_empty_input(self):
        assert comparisons_to_csv([]) == ""


class TestWriteReport:
    def test_writes_all_artifacts(self, tmp_path):
        curves = {
            "rowhammer": FlipCurve("rowhammer", np.array([4e5, 8.5e5]), np.array([250, 500])),
            "rowpress": FlipCurve("rowpress", np.array([4.8e7, 9.6e7]), np.array([5000, 10000])),
        }
        written = write_comparison_report(comparisons(), tmp_path, basename="exp", fig6_curves=curves)
        assert set(written) == {"markdown", "csv", "json"}
        for path in written.values():
            assert path.exists() and path.read_text()
        payload = json.loads(written["json"].read_text())
        assert len(payload["rows"]) == 2
        assert payload["takeaways"]["equal_time_flip_ratio"] == 20.0
        assert "fig6" in payload

    def test_write_without_curves(self, tmp_path):
        written = write_comparison_report(comparisons(), tmp_path)
        payload = json.loads(written["json"].read_text())
        assert "fig6" not in payload
        assert "equal_time_flip_ratio" not in payload["takeaways"]
