"""Golden-equivalence tests: vectorized bit-search vs the loop reference.

The vectorized intra-layer proposer (cached flip-delta table + one flat
argmax) must reproduce the retained per-bit loop proposer bit-for-bit —
same proposals, same tie-breaking, same committed attack events — across
seeds, models and restricted candidate sets.
"""

import numpy as np
import pytest

from repro.core.bfa import BitFlipAttack, BitSearchConfig, CandidateSet
from repro.core.mapping import TensorCandidates
from repro.core.objective import AttackObjective
from repro.nn.bitops import bit_flip_delta, bit_flip_delta_table
from repro.nn.quantization import quantize_model, quantized_parameters


@pytest.fixture
def objective_factory(tiny_dataset):
    def make(seed):
        return AttackObjective.from_dataset(
            tiny_dataset, attack_batch_size=16, eval_samples=24, seed=seed,
            tolerance=1.0, relative_factor=1.05,
        )
    return make


def restricted_candidates(model, seed):
    """A random per-tensor restriction exercising the profile-aware path."""
    rng = np.random.default_rng(seed)
    per_tensor = {}
    for name, parameter in quantized_parameters(model).items():
        count = max(4, parameter.size // 4)
        per_tensor[name] = TensorCandidates(
            tensor_name=name,
            weight_indices=np.sort(
                rng.choice(parameter.size, size=count, replace=False)
            ).astype(np.int64),
            bit_positions=rng.integers(0, parameter.num_bits, size=count).astype(np.int64),
            directions=rng.integers(0, 2, size=count).astype(np.int8),
        )
    return CandidateSet.from_tensor_candidates(per_tensor)


def run_attack(tiny_trained_model, objective_factory, engine, seed, restrict):
    model, clean_state = tiny_trained_model
    model.load_state_dict(clean_state)
    quantize_model(model)
    candidates = restricted_candidates(model, seed) if restrict else None
    attack = BitFlipAttack(
        model,
        objective_factory(seed),
        candidates=candidates,
        config=BitSearchConfig(max_flips=10, top_k_layers=3),
        engine=engine,
    )
    return attack.run()


class TestDeltaTable:
    @pytest.mark.parametrize("num_bits", [2, 4, 8])
    def test_matches_scalar_reference(self, num_bits):
        rng = np.random.default_rng(num_bits)
        low, high = -(1 << (num_bits - 1)), (1 << (num_bits - 1)) - 1
        values = rng.integers(low, high + 1, size=64)
        table = bit_flip_delta_table(values, num_bits)
        assert table.shape == (num_bits, values.size)
        for bit in range(num_bits):
            for index, value in enumerate(values):
                assert table[bit, index] == bit_flip_delta(int(value), bit, num_bits)


class TestProposerEquivalence:
    @pytest.mark.parametrize("engine", ["vectorized", "compiled"])
    @pytest.mark.parametrize("seed", [2, 3, 11])
    def test_unconstrained_events_bit_identical(
        self, tiny_trained_model, objective_factory, seed, engine
    ):
        reference = run_attack(tiny_trained_model, objective_factory, "reference", seed, False)
        result = run_attack(tiny_trained_model, objective_factory, engine, seed, False)
        assert reference.events == result.events
        assert reference.accuracy_curve == result.accuracy_curve
        assert reference.loss_curve == result.loss_curve
        assert reference.num_flips == result.num_flips

    @pytest.mark.parametrize("engine", ["vectorized", "compiled"])
    @pytest.mark.parametrize("seed", [2, 11])
    def test_restricted_events_bit_identical(
        self, tiny_trained_model, objective_factory, seed, engine
    ):
        reference = run_attack(tiny_trained_model, objective_factory, "reference", seed, True)
        result = run_attack(tiny_trained_model, objective_factory, engine, seed, True)
        assert reference.events == result.events
        assert reference.accuracy_curve == result.accuracy_curve

    def test_single_iteration_proposals_identical(
        self, tiny_trained_model, objective_factory
    ):
        """Compare the raw per-tensor proposals of one intra-layer stage."""
        model, clean_state = tiny_trained_model
        model.load_state_dict(clean_state)
        quantize_model(model)
        objective = objective_factory(5)
        reference = BitFlipAttack(model, objective, engine="reference")
        vectorized = BitFlipAttack(model, objective, engine="vectorized")
        objective.attack_loss_and_gradients(model)
        for tensor_name in reference.candidates.tensors():
            ref = reference._propose_for_tensor(tensor_name)
            vec = vectorized._propose_for_tensor(tensor_name)
            assert (ref.weight_index, ref.bit_position, ref.int_before, ref.int_after) == (
                vec.weight_index, vec.bit_position, vec.int_before, vec.int_after,
            )
            assert ref.estimated_gain == vec.estimated_gain

    def test_delta_cache_tracks_apply_and_revert(
        self, tiny_trained_model, objective_factory
    ):
        """The cached table stays exact through apply/revert/commit cycles."""
        model, clean_state = tiny_trained_model
        model.load_state_dict(clean_state)
        quantize_model(model)
        attack = BitFlipAttack(model, objective_factory(7), engine="vectorized")
        attack.objective.attack_loss_and_gradients(model)
        name = attack.candidates.tensors()[0]
        proposal = attack._propose_for_tensor(name)
        for action in (attack._apply, attack._revert, attack._apply):
            action(proposal)
            parameter = attack.parameters[name]
            expected = bit_flip_delta_table(
                parameter.int_repr.ravel(), parameter.num_bits
            )
            assert np.array_equal(attack._delta_tables[name], expected)
