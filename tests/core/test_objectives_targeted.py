"""Targeted / stealthy objectives and quantized (INT4) victims.

Covers the pluggable-objective contract end to end: validation edge cases
(source == target rejected, ASR undefined when the evaluation set has no
source-class samples), the declarative :class:`ObjectiveConfig` round trip,
attack runs driven by the new objectives, and the golden-equivalence
guarantee that ``engine="reference"`` reproduces the vectorized engine
bit-for-bit for every objective and victim precision.
"""

import math

import numpy as np
import pytest

from repro.analysis.tables import format_asr
from repro.core.bfa import BitFlipAttack, BitSearchConfig
from repro.core.objective import (
    OBJECTIVE_KINDS,
    ObjectiveConfig,
    ObjectiveMetrics,
    StealthyTargeted,
    TargetedMisclassification,
    UntargetedDegradation,
)
from repro.nn.quantization import precision_num_bits, quantize_model


def make_targeted(**overrides):
    defaults = dict(
        attack_x=np.zeros((4, 3, 8, 8)),
        attack_y=np.zeros(4, dtype=np.int64),
        eval_x=np.zeros((6, 3, 8, 8)),
        eval_y=np.zeros(6, dtype=np.int64),
        source_class=0,
        target_class=1,
    )
    defaults.update(overrides)
    return TargetedMisclassification(**defaults)


class TestValidation:
    def test_source_equals_target_rejected(self):
        with pytest.raises(ValueError, match="must differ"):
            make_targeted(source_class=2, target_class=2)

    def test_config_rejects_source_equals_target_at_validation(self):
        """The declarative config fails before any work unit could run."""
        with pytest.raises(ValueError, match="must differ"):
            ObjectiveConfig("targeted", params={"source_class": 1, "target_class": 1})

    def test_config_requires_source_and_target(self):
        with pytest.raises(ValueError, match="source_class"):
            ObjectiveConfig("targeted", params={"target_class": 1})

    def test_unknown_objective_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown objective kind"):
            ObjectiveConfig("adversarial_patch")

    def test_unknown_and_reserved_params_rejected_at_validation(self):
        """Typos and runner-owned keys fail at spec time, not mid-run."""
        with pytest.raises(ValueError, match="does not accept"):
            ObjectiveConfig(
                "targeted",
                params={"source_class": 0, "target_class": 1, "succes_threshold": 80},
            )
        with pytest.raises(ValueError, match="does not accept"):
            # seeds belong to the experiment config, never to the objective
            ObjectiveConfig(
                "targeted", params={"source_class": 0, "target_class": 1, "seed": 5}
            )
        with pytest.raises(ValueError, match="does not accept"):
            ObjectiveConfig("untargeted", params={"source_class": 0})

    def test_threshold_must_be_percentage(self):
        with pytest.raises(ValueError):
            make_targeted(success_threshold=101.0)
        with pytest.raises(ValueError):
            make_targeted(success_threshold=0.0)

    def test_stealthy_clean_batch_must_be_paired(self):
        with pytest.raises(ValueError, match="provided together"):
            StealthyTargeted(
                attack_x=np.zeros((4, 3, 8, 8)),
                attack_y=np.zeros(4, dtype=np.int64),
                eval_x=np.zeros((6, 3, 8, 8)),
                eval_y=np.zeros(6, dtype=np.int64),
                source_class=0,
                target_class=1,
                clean_x=np.zeros((2, 3, 8, 8)),
            )

    def test_from_dataset_requires_source_samples(self, tiny_dataset):
        missing = tiny_dataset.num_classes + 3
        with pytest.raises(ValueError, match="no test samples"):
            TargetedMisclassification.from_dataset(
                tiny_dataset, source_class=missing, target_class=0
            )

    def test_unknown_victim_precision_rejected(self):
        with pytest.raises(ValueError, match="unknown victim precision"):
            precision_num_bits("int2")
        assert precision_num_bits("float32") == 8
        assert precision_num_bits("int4") == 4


class TestUndefinedAsr:
    def test_asr_nan_without_source_samples(self, tiny_quantized_model):
        """ASR is nan when the eval set lacks the source class — never satisfied."""
        model, _ = tiny_quantized_model
        rng = np.random.default_rng(0)
        eval_x = rng.normal(size=(6, *model_input_shape(model))).astype(np.float64)
        objective = make_targeted(
            attack_x=eval_x[:4],
            attack_y=np.zeros(4, dtype=np.int64),
            eval_x=eval_x,
            eval_y=np.full(6, 2, dtype=np.int64),  # only class 2, source is 0
        )
        metrics = objective.evaluate(model)
        assert math.isnan(metrics.attack_success_rate)
        assert not objective.is_satisfied(metrics)

    def test_undefined_asr_rendered_as_dash(self):
        """The PR 1/2 convention: undefined metrics render as '-'."""
        assert format_asr(float("nan")) == "-"
        assert format_asr(None) == "-"
        assert format_asr(87.5) == "87.5"


def model_input_shape(model):
    # The tiny test surrogate is CIFAR-like: (3, 8, 8).
    return (3, 8, 8)


class TestObjectiveConfig:
    def test_registry_covers_all_kinds(self):
        assert set(OBJECTIVE_KINDS) == {"untargeted", "targeted", "stealthy_targeted"}
        assert OBJECTIVE_KINDS["untargeted"] is UntargetedDegradation

    def test_round_trip(self):
        config = ObjectiveConfig(
            "stealthy_targeted",
            params={"source_class": 0, "target_class": 3, "max_clean_accuracy_drop": 8.0},
        )
        back = ObjectiveConfig.from_dict(config.to_dict())
        assert back == config
        assert "stealthy_targeted" in back.describe()

    def test_build_dispatches_by_kind(self, tiny_dataset):
        untargeted = ObjectiveConfig().build(tiny_dataset, seed=1, tolerance=3.0)
        assert isinstance(untargeted, UntargetedDegradation)
        assert untargeted.tolerance == 3.0

        targeted = ObjectiveConfig(
            "targeted", params={"source_class": 0, "target_class": 1}
        ).build(tiny_dataset, attack_batch_size=8, seed=1)
        assert isinstance(targeted, TargetedMisclassification)
        # The attack batch is drawn from the source class only.
        assert (targeted.attack_y == 0).all()
        assert (targeted.attack_pool_y == 0).all()

    def test_stealthy_build_draws_disjoint_clean_batch(self, tiny_dataset):
        objective = ObjectiveConfig(
            "stealthy_targeted", params={"source_class": 1, "target_class": 2}
        ).build(tiny_dataset, attack_batch_size=8, seed=4)
        assert isinstance(objective, StealthyTargeted)
        assert objective.clean_x is not None
        assert (objective.clean_y != 1).all()


class TestTargetedAttackRuns:
    def make_objective(self, tiny_dataset, seed, kind="targeted"):
        params = {"source_class": 0, "target_class": 1}
        if kind == "stealthy_targeted":
            params.update(max_clean_accuracy_drop=100.0)
        return ObjectiveConfig(kind, params=params).build(
            tiny_dataset, attack_batch_size=12, eval_samples=None, seed=seed
        )

    @pytest.mark.parametrize("kind", ["targeted", "stealthy_targeted"])
    def test_attack_tracks_asr(self, tiny_trained_model, tiny_dataset, kind):
        model, clean_state = tiny_trained_model
        model.load_state_dict(clean_state)
        quantize_model(model)
        objective = self.make_objective(tiny_dataset, seed=3, kind=kind)
        result = BitFlipAttack(
            model,
            objective,
            config=BitSearchConfig(max_flips=6, top_k_layers=3),
        ).run()
        assert result.objective_kind == kind
        assert result.attack_success_rate is not None
        assert len(result.asr_curve) == len(result.accuracy_curve)
        # The targeted loss must push the ASR at or above its start.
        assert result.asr_curve[-1] >= result.asr_curve[0]
        assert math.isnan(result.target_accuracy)

    def test_stealthy_loss_includes_clean_term(self, tiny_trained_model, tiny_dataset):
        model, clean_state = tiny_trained_model
        model.load_state_dict(clean_state)
        quantize_model(model)
        stealthy = self.make_objective(tiny_dataset, seed=5, kind="stealthy_targeted")
        bare = TargetedMisclassification(
            attack_x=stealthy.attack_x,
            attack_y=stealthy.attack_y,
            eval_x=stealthy.eval_x,
            eval_y=stealthy.eval_y,
            source_class=stealthy.source_class,
            target_class=stealthy.target_class,
        )
        assert stealthy.attack_loss(model) != pytest.approx(bare.attack_loss(model))

    def test_stealthy_baseline_and_bound(self, tiny_trained_model, tiny_dataset):
        model, clean_state = tiny_trained_model
        model.load_state_dict(clean_state)
        quantize_model(model)
        objective = self.make_objective(tiny_dataset, seed=7, kind="stealthy_targeted")
        first = objective.evaluate(model)
        assert first.clean_accuracy_drop == pytest.approx(0.0)
        # A perfect ASR with a catastrophic accuracy drop must not satisfy a
        # tight stealth bound.
        tight = StealthyTargeted(
            attack_x=objective.attack_x,
            attack_y=objective.attack_y,
            eval_x=objective.eval_x,
            eval_y=objective.eval_y,
            source_class=objective.source_class,
            target_class=objective.target_class,
            max_clean_accuracy_drop=5.0,
        )
        good = ObjectiveMetrics(accuracy=90.0, attack_success_rate=100.0, clean_accuracy_drop=2.0)
        loud = ObjectiveMetrics(accuracy=30.0, attack_success_rate=100.0, clean_accuracy_drop=60.0)
        assert tight.is_satisfied(good)
        assert not tight.is_satisfied(loud)


class TestGoldenEquivalence:
    """engine="reference" stays bit-identical for every new objective/precision."""

    def run_attack(self, tiny_trained_model, tiny_dataset, engine, kind, num_bits=8, seed=11):
        model, clean_state = tiny_trained_model
        model.load_state_dict(clean_state)
        quantize_model(model, num_bits=num_bits)
        if kind == "untargeted":
            objective = ObjectiveConfig().build(
                tiny_dataset, attack_batch_size=12, eval_samples=24, seed=seed
            )
        else:
            objective = ObjectiveConfig(
                kind, params={"source_class": 0, "target_class": 1}
            ).build(tiny_dataset, attack_batch_size=12, eval_samples=24, seed=seed)
        return BitFlipAttack(
            model,
            objective,
            config=BitSearchConfig(max_flips=6, top_k_layers=3),
            engine=engine,
        ).run()

    @pytest.mark.parametrize("kind", ["targeted", "stealthy_targeted"])
    def test_new_objectives_bit_identical(self, tiny_trained_model, tiny_dataset, kind):
        reference = self.run_attack(tiny_trained_model, tiny_dataset, "reference", kind)
        vectorized = self.run_attack(tiny_trained_model, tiny_dataset, "vectorized", kind)
        assert reference.events == vectorized.events
        assert reference.accuracy_curve == vectorized.accuracy_curve
        assert reference.asr_curve == vectorized.asr_curve
        assert reference.loss_curve == vectorized.loss_curve

    @pytest.mark.parametrize("kind", ["untargeted", "targeted"])
    def test_int4_victims_bit_identical(self, tiny_trained_model, tiny_dataset, kind):
        reference = self.run_attack(
            tiny_trained_model, tiny_dataset, "reference", kind, num_bits=4
        )
        vectorized = self.run_attack(
            tiny_trained_model, tiny_dataset, "vectorized", kind, num_bits=4
        )
        assert reference.events == vectorized.events
        assert reference.accuracy_curve == vectorized.accuracy_curve
        assert reference.num_flips == vectorized.num_flips

    def test_int4_flips_respect_narrow_range(self, tiny_trained_model, tiny_dataset):
        result = self.run_attack(
            tiny_trained_model, tiny_dataset, "vectorized", "untargeted", num_bits=4
        )
        for event in result.events:
            assert -8 <= event.int_before <= 7
            assert -8 <= event.int_after <= 7
