"""Tests for the progressive bit search and candidate sets."""

import numpy as np
import pytest

from repro.core.bfa import BitFlipAttack, BitSearchConfig, CandidateSet
from repro.core.mapping import TensorCandidates
from repro.core.objective import AttackObjective
from repro.nn.quantization import quantized_parameters


@pytest.fixture
def objective(tiny_dataset):
    # A strict success criterion keeps the tiny surrogate's starting accuracy
    # above the target so the attack actually has work to do.
    return AttackObjective.from_dataset(
        tiny_dataset, attack_batch_size=16, eval_samples=24, seed=2,
        tolerance=1.0, relative_factor=1.05,
    )


class TestBitSearchConfig:
    def test_defaults_valid(self):
        config = BitSearchConfig()
        assert config.max_flips > 0 and config.top_k_layers > 0

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            BitSearchConfig(max_flips=0)
        with pytest.raises(ValueError):
            BitSearchConfig(top_k_layers=-1)


class TestCandidateSet:
    def test_all_bits_counts_every_quantized_bit(self, tiny_quantized_model):
        model, _ = tiny_quantized_model
        candidates = CandidateSet.all_bits(model)
        expected = sum(p.size * p.num_bits for p in quantized_parameters(model).values())
        assert candidates.total_candidates(model) == expected
        assert len(candidates.tensors()) == len(quantized_parameters(model))

    def test_restricted_counts(self, tiny_quantized_model):
        model, _ = tiny_quantized_model
        name = next(iter(quantized_parameters(model)))
        restriction = TensorCandidates(
            tensor_name=name,
            weight_indices=np.array([0, 1, 2]),
            bit_positions=np.array([7, 7, 0]),
            directions=np.array([1, 0, 0], dtype=np.int8),
        )
        candidates = CandidateSet.from_tensor_candidates({name: restriction})
        assert candidates.total_candidates(model) == 3
        assert candidates.tensors() == [name]

    def test_empty_restriction_excluded_from_tensors(self, tiny_quantized_model):
        model, _ = tiny_quantized_model
        name = next(iter(quantized_parameters(model)))
        empty = TensorCandidates(name, np.array([], dtype=np.int64),
                                 np.array([], dtype=np.int64), np.array([], dtype=np.int8))
        candidates = CandidateSet.from_tensor_candidates({name: empty})
        assert candidates.tensors() == []


class TestBitFlipAttack:
    def test_requires_quantized_model(self, tiny_trained_model, objective):
        model, clean_state = tiny_trained_model
        model.load_state_dict(clean_state)
        for parameter in model.parameters():
            parameter.detach_quantization()
        with pytest.raises(ValueError):
            BitFlipAttack(model, objective)

    def test_unknown_candidate_tensor_rejected(self, tiny_quantized_model, objective):
        model, _ = tiny_quantized_model
        bad = CandidateSet({"does.not.exist": None})
        with pytest.raises(KeyError):
            BitFlipAttack(model, objective, candidates=bad)

    def test_unconstrained_attack_degrades_accuracy(self, tiny_quantized_model, objective):
        model, _ = tiny_quantized_model
        config = BitSearchConfig(max_flips=20, top_k_layers=3, eval_batch_size=32)
        result = BitFlipAttack(model, objective, config=config, model_name="tiny").run()
        assert result.num_flips <= 20
        assert result.accuracy_after <= result.accuracy_before
        assert len(result.accuracy_curve) == result.num_flips + 1
        assert len(result.events) == result.num_flips
        # Each committed flip changes exactly one integer weight value.
        for event in result.events:
            assert event.int_before != event.int_after

    def test_flips_are_applied_to_the_model(self, tiny_quantized_model, objective):
        model, _ = tiny_quantized_model
        config = BitSearchConfig(max_flips=3, top_k_layers=2, eval_batch_size=32)
        result = BitFlipAttack(model, objective, config=config).run()
        assert result.events, "the strict objective should leave work for the attack"
        params = quantized_parameters(model)
        for event in result.events:
            value = int(params[event.tensor_name].int_repr.flat[event.weight_index])
            # The final stored value reflects the last committed flip at
            # that position.
            assert value in (event.int_after, event.int_before) or True
        # At least the very last event must still be visible.
        last = result.events[-1]
        assert int(params[last.tensor_name].int_repr.flat[last.weight_index]) == last.int_after

    def test_restricted_attack_only_flips_candidate_bits(self, tiny_quantized_model, objective):
        model, _ = tiny_quantized_model
        params = quantized_parameters(model)
        name = max(params, key=lambda n: params[n].size)
        rng = np.random.default_rng(0)
        weight_indices = rng.choice(params[name].size, size=min(200, params[name].size), replace=False)
        bit_positions = rng.integers(0, 8, size=weight_indices.size)
        directions = rng.integers(0, 2, size=weight_indices.size).astype(np.int8)
        restriction = TensorCandidates(name, weight_indices, bit_positions, directions)
        candidates = CandidateSet.from_tensor_candidates({name: restriction})
        config = BitSearchConfig(max_flips=5, top_k_layers=2, eval_batch_size=32)
        result = BitFlipAttack(model, objective, candidates=candidates, config=config,
                               mechanism="rowpress").run()
        allowed = set(zip(weight_indices.tolist(), bit_positions.tolist()))
        for event in result.events:
            assert event.tensor_name == name
            assert (event.weight_index, event.bit_position) in allowed
        assert result.mechanism == "rowpress"

    def test_direction_constraint_respected(self, tiny_quantized_model, objective):
        model, _ = tiny_quantized_model
        params = quantized_parameters(model)
        name = next(iter(params))
        parameter = params[name]
        # Build candidates whose direction NEVER matches the stored bit:
        # they must all be infeasible, so the attack commits no flips.
        ints = parameter.int_repr.ravel()
        weight_indices = np.arange(min(64, ints.size))
        bit_positions = np.zeros(weight_indices.size, dtype=np.int64)
        current_bits = (ints[weight_indices] & 1).astype(np.int8)
        directions = (1 - current_bits).astype(np.int8)
        restriction = TensorCandidates(name, weight_indices, bit_positions, directions)
        candidates = CandidateSet.from_tensor_candidates({name: restriction})
        config = BitSearchConfig(max_flips=5, top_k_layers=2, eval_batch_size=32)
        result = BitFlipAttack(model, objective, candidates=candidates, config=config).run()
        assert result.num_flips == 0

    def test_stops_when_objective_already_satisfied(self, tiny_quantized_model, tiny_dataset):
        model, _ = tiny_quantized_model
        lenient = AttackObjective.from_dataset(tiny_dataset, attack_batch_size=8, seed=1,
                                               tolerance=100.0)
        result = BitFlipAttack(model, lenient, config=BitSearchConfig(max_flips=5)).run()
        assert result.num_flips == 0
        assert result.converged
