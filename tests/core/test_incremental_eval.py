"""Attack-loop wiring of the incremental evaluation engine.

The golden suites (test_bfa_golden, test_objectives_targeted) already pin
that ``engine="vectorized"`` runs — which now evaluate through the
:class:`SuffixEvaluator` — are bit-identical to ``engine="reference"``.
These tests cover the wiring itself: engine attachment/detachment, the
multi-batch evaluation path, and the hoisted batch views.
"""

import numpy as np
import pytest

from repro.core.bfa import BitFlipAttack, BitSearchConfig
from repro.core.objective import AttackObjective, TargetedMisclassification
from repro.nn.quantization import quantize_model


@pytest.fixture
def fresh_model(tiny_trained_model):
    model, clean_state = tiny_trained_model
    model.load_state_dict(clean_state)
    quantize_model(model)
    return model


def untargeted(dataset, seed=2, **overrides):
    kwargs = dict(
        attack_batch_size=16, eval_samples=24, seed=seed, tolerance=1.0, relative_factor=1.05
    )
    kwargs.update(overrides)
    return AttackObjective.from_dataset(dataset, **kwargs)


class TestEngineAttachment:
    def test_vectorized_attack_builds_incremental_engine(self, fresh_model, tiny_dataset):
        objective = untargeted(tiny_dataset)
        attack = BitFlipAttack(fresh_model, objective, engine="vectorized")
        assert attack._evaluator is not None
        # Every quantized tensor must map to a forward stage.
        assert set(attack._stage_of_tensor) == set(attack.parameters)
        # The engine is attached only for the duration of run(): between
        # runs the objective must answer from the full-forward path so
        # out-of-band weight mutations can never hit a stale cache.
        assert objective._inference is None

    def test_reference_attack_keeps_full_forward_path(self, fresh_model, tiny_dataset):
        objective = untargeted(tiny_dataset)
        attack = BitFlipAttack(fresh_model, objective, engine="reference")
        assert attack._evaluator is None

    def test_run_detaches_engine_afterwards(self, fresh_model, tiny_dataset):
        objective = untargeted(tiny_dataset)
        attack = BitFlipAttack(
            fresh_model, objective, config=BitSearchConfig(max_flips=2, top_k_layers=2)
        )
        attack.run()
        assert objective._inference is None

    def test_reference_run_detaches_stale_engine(self, fresh_model, tiny_dataset):
        objective = untargeted(tiny_dataset)
        vectorized = BitFlipAttack(fresh_model, objective, engine="vectorized")
        objective.attach_inference_engine(vectorized._evaluator)  # stale leftover
        reference = BitFlipAttack(
            fresh_model, objective,
            config=BitSearchConfig(max_flips=1, top_k_layers=2), engine="reference",
        )
        reference.run()
        assert objective._inference is None


class TestMultiBatchEvaluation:
    def test_small_eval_batches_golden_identical(self, tiny_trained_model, tiny_dataset):
        """Several eval batches mean several cache keys; results must not move."""
        results = {}
        for engine in ("reference", "vectorized"):
            model, clean_state = tiny_trained_model
            model.load_state_dict(clean_state)
            quantize_model(model)
            objective = TargetedMisclassification.from_dataset(
                tiny_dataset, source_class=0, target_class=1,
                attack_batch_size=16, eval_samples=None, seed=4,
            )
            attack = BitFlipAttack(
                model, objective,
                config=BitSearchConfig(max_flips=4, top_k_layers=3, eval_batch_size=16),
                engine=engine,
            )
            results[engine] = attack.run()
        reference, vectorized = results["reference"], results["vectorized"]
        assert reference.events == vectorized.events
        assert reference.accuracy_curve == vectorized.accuracy_curve
        assert reference.asr_curve == vectorized.asr_curve
        assert reference.loss_curve == vectorized.loss_curve


class TestBatchedTrialScoring:
    """attack_losses (peek_many) == sequential apply -> peek -> revert."""

    def shortlist(self, attack, objective, count=5):
        """A realistic inter-layer shortlist from one intra-layer stage."""
        objective.attack_loss_and_gradients(attack.model)
        proposals = [
            proposal
            for proposal in (
                attack._propose_for_tensor(name) for name in attack.candidates.tensors()
            )
            if proposal is not None and np.isfinite(proposal.estimated_gain)
        ]
        proposals.sort(key=lambda p: p.estimated_gain, reverse=True)
        return proposals[:count]

    @pytest.mark.parametrize("objective_kind", ["untargeted", "targeted", "stealthy"])
    def test_batched_losses_match_sequential_peek_path(
        self, tiny_trained_model, tiny_dataset, objective_kind
    ):
        from repro.core.objective import StealthyTargeted

        model, clean_state = tiny_trained_model
        model.load_state_dict(clean_state)
        quantize_model(model)
        if objective_kind == "untargeted":
            objective = untargeted(tiny_dataset)
        elif objective_kind == "targeted":
            objective = TargetedMisclassification.from_dataset(
                tiny_dataset, source_class=0, target_class=1, attack_batch_size=16, seed=4
            )
        else:
            objective = StealthyTargeted.from_dataset(
                tiny_dataset, source_class=0, target_class=1, attack_batch_size=16, seed=4
            )
        attack = BitFlipAttack(model, objective, engine="vectorized")
        objective.attach_inference_engine(attack._evaluator)
        try:
            shortlist = self.shortlist(attack, objective)
            assert len(shortlist) >= 3
            # The PR-4 sequential path: one apply -> suffix peek -> revert
            # per proposal.
            sequential = []
            for proposal in shortlist:
                attack._apply(proposal)
                sequential.append(
                    objective.attack_loss(
                        model, flip_stage=attack._stage_of_tensor[proposal.tensor_name]
                    )
                )
                attack._revert(proposal)
            batched = attack._score_shortlist(objective, shortlist)
            assert batched == sequential
        finally:
            objective.detach_inference_engine()

    def test_batched_losses_match_reference_full_forward(
        self, tiny_trained_model, tiny_dataset
    ):
        model, clean_state = tiny_trained_model
        model.load_state_dict(clean_state)
        quantize_model(model)
        objective = untargeted(tiny_dataset)
        attack = BitFlipAttack(model, objective, engine="vectorized")
        objective.attach_inference_engine(attack._evaluator)
        try:
            shortlist = self.shortlist(attack, objective)
            batched = attack._score_shortlist(objective, shortlist)
        finally:
            objective.detach_inference_engine()
        # Reference scoring: full forwards, no engine anywhere.
        full = []
        for proposal in shortlist:
            attack._apply(proposal)
            full.append(objective.attack_loss(model))
            attack._revert(proposal)
        assert batched == full

    def test_trial_state_resets_after_batched_scoring(self, fresh_model, tiny_dataset):
        objective = untargeted(tiny_dataset)
        attack = BitFlipAttack(fresh_model, objective, engine="vectorized")
        objective.attach_inference_engine(attack._evaluator)
        try:
            shortlist = self.shortlist(attack, objective, count=3)
            attack._score_shortlist(objective, shortlist)
            assert objective._forward_mode is None
            assert objective._trial_flips == ()
            assert objective._trial_logits is None
        finally:
            objective.detach_inference_engine()


class TestHoistedBatches:
    def test_eval_batches_memoized(self, fresh_model, tiny_dataset):
        objective = untargeted(tiny_dataset)
        first = objective._eval_batches(16)
        assert objective._eval_batches(16) is first
        assert [start for start, _, _ in first] == list(range(0, 24, 16))
        for _, batch_x, batch_tensor in first:
            assert batch_tensor.data is batch_x or np.array_equal(batch_tensor.data, batch_x)

    def test_attack_batch_tensor_follows_resample(self, fresh_model, tiny_dataset):
        objective = untargeted(tiny_dataset)
        before = objective._batch_tensor("attack")
        assert objective._batch_tensor("attack") is before
        assert objective.resample_attack_batch()
        after = objective._batch_tensor("attack")
        assert after is not before
        assert np.array_equal(after.data, objective.attack_x)
