"""Tests for the DRAM-profile-aware attack (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.bfa import BitSearchConfig
from repro.core.mapping import DNN_DEPLOYMENT_GEOMETRY
from repro.core.objective import AttackObjective
from repro.core.profile_aware import DramProfileAwareAttack, ProfileAwareConfig, run_profile_aware_attack
from repro.faults.profiles import BitFlipProfile
from repro.nn.quantization import quantize_model, quantized_parameters


@pytest.fixture
def objective(tiny_dataset):
    return AttackObjective.from_dataset(
        tiny_dataset, attack_batch_size=16, eval_samples=24, seed=4,
        tolerance=1.0, relative_factor=1.05,
    )


def dense_profile(mechanism="rowpress", density=0.1, seed=0):
    return BitFlipProfile.synthetic(
        mechanism=mechanism,
        capacity_bits=DNN_DEPLOYMENT_GEOMETRY.total_cells,
        density=density,
        one_to_zero_probability=0.5,
        seed=seed,
    )


SEARCH = BitSearchConfig(max_flips=15, top_k_layers=3, eval_batch_size=32)


class TestConstruction:
    def test_quantizes_unquantized_model(self, tiny_trained_model, objective):
        model, clean_state = tiny_trained_model
        model.load_state_dict(clean_state)
        for parameter in model.parameters():
            parameter.detach_quantization()
        attack = DramProfileAwareAttack(model, objective, dense_profile(),
                                        config=ProfileAwareConfig(search=SEARCH))
        assert quantized_parameters(model)
        assert attack.num_candidate_bits > 0

    def test_already_quantized_model_requires_infos(self, tiny_quantized_model, objective):
        model, infos = tiny_quantized_model
        with pytest.raises(ValueError):
            DramProfileAwareAttack(model, objective, dense_profile())
        attack = DramProfileAwareAttack(model, objective, dense_profile(),
                                        tensor_infos=infos,
                                        config=ProfileAwareConfig(search=SEARCH))
        assert attack.num_candidate_bits > 0

    def test_candidate_count_scales_with_profile_density(self, tiny_quantized_model, objective):
        model, infos = tiny_quantized_model
        sparse = DramProfileAwareAttack(model, objective, dense_profile(density=0.01),
                                        tensor_infos=infos,
                                        config=ProfileAwareConfig(search=SEARCH))
        dense = DramProfileAwareAttack(model, objective, dense_profile(density=0.2),
                                       tensor_infos=infos,
                                       config=ProfileAwareConfig(search=SEARCH))
        assert dense.num_candidate_bits > sparse.num_candidate_bits

    def test_placement_seed_changes_candidates(self, tiny_quantized_model, objective):
        model, infos = tiny_quantized_model
        profile = dense_profile(density=0.02)
        a = DramProfileAwareAttack(model, objective, profile, tensor_infos=infos,
                                   config=ProfileAwareConfig(search=SEARCH, placement_seed=1))
        b = DramProfileAwareAttack(model, objective, profile, tensor_infos=infos,
                                   config=ProfileAwareConfig(search=SEARCH, placement_seed=2))
        assert a.mapping.base_offset_bits != b.mapping.base_offset_bits


class TestExecution:
    def test_attack_runs_and_reports_mechanism(self, tiny_quantized_model, objective):
        model, infos = tiny_quantized_model
        result = run_profile_aware_attack(
            model, objective, dense_profile("rowpress"),
            config=ProfileAwareConfig(search=SEARCH),
            tensor_infos=infos, model_name="tiny",
        )
        assert result.mechanism == "rowpress"
        assert result.model_name == "tiny"
        assert result.candidate_bits > 0
        assert result.accuracy_after <= result.accuracy_before

    def test_denser_profile_is_at_least_as_effective(self, tiny_trained_model, tiny_dataset):
        model, clean_state = tiny_trained_model

        def attack_with(density):
            model.load_state_dict(clean_state)
            infos = quantize_model(model)
            objective = AttackObjective.from_dataset(tiny_dataset, attack_batch_size=16,
                                                     eval_samples=24, seed=11)
            return run_profile_aware_attack(
                model, objective, dense_profile(density=density, seed=3),
                config=ProfileAwareConfig(search=BitSearchConfig(max_flips=12, top_k_layers=3,
                                                                 eval_batch_size=32)),
                tensor_infos=infos,
            )

        sparse_result = attack_with(0.01)
        dense_result = attack_with(0.25)
        # With a 12-flip budget the denser profile must end at an accuracy no
        # worse (higher) than the sparse profile by a wide margin.
        assert dense_result.accuracy_after <= sparse_result.accuracy_after + 10.0
