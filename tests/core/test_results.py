"""Tests for attack result containers."""

import numpy as np

from repro.core.results import AttackEvent, AttackResult


def make_result():
    events = [
        AttackEvent(0, "a.weight", 3, 7, 10, -118, loss_after=1.5, accuracy_after=70.0),
        AttackEvent(1, "b.weight", 5, 6, -4, 60, loss_after=2.5, accuracy_after=40.0),
        AttackEvent(2, "a.weight", 9, 7, 2, -126, loss_after=3.5, accuracy_after=12.0),
    ]
    return AttackResult(
        model_name="toy",
        mechanism="rowpress",
        accuracy_before=90.0,
        accuracy_after=12.0,
        target_accuracy=15.0,
        num_flips=3,
        converged=True,
        events=events,
        accuracy_curve=[90.0, 70.0, 40.0, 12.0],
        loss_curve=[1.0, 1.5, 2.5],
        candidate_bits=1000,
    )


class TestAttackEvent:
    def test_weight_delta(self):
        event = AttackEvent(0, "w", 0, 7, 10, -118, 0.0, 0.0)
        assert event.weight_delta_int == -128


class TestAttackResult:
    def test_accuracy_drop(self):
        assert make_result().accuracy_drop == 78.0

    def test_curve_arrays(self):
        flips, accuracy = make_result().curve()
        assert np.array_equal(flips, [0, 1, 2, 3])
        assert accuracy[-1] == 12.0

    def test_flips_to_reach(self):
        result = make_result()
        assert result.flips_to_reach(50.0) == 2
        assert result.flips_to_reach(12.0) == 3
        assert result.flips_to_reach(5.0) is None

    def test_flipped_bit_summary(self):
        assert make_result().flipped_bit_summary() == {"a.weight": 2, "b.weight": 1}

    def test_bit_position_histogram(self):
        histogram = make_result().bit_position_histogram()
        assert histogram == {7: 2, 6: 1}

    def test_to_dict_is_json_friendly(self):
        import json

        payload = make_result().to_dict()
        text = json.dumps(payload)
        assert "rowpress" in text
        assert payload["num_flips"] == 3
