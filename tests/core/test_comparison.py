"""Tests for the RowHammer-vs-RowPress comparison harness (Table I machinery)."""

import numpy as np
import pytest

from repro.core.bfa import BitSearchConfig
from repro.core.comparison import (
    ComparisonConfig,
    MechanismOutcome,
    ModelComparisonResult,
    average_flip_ratio,
    build_deployment_profiles,
    compare_mechanisms_for_model,
)
from repro.core.results import AttackResult
from repro.models.registry import get_spec


def make_outcome(mechanism, flips_list, accuracy=10.0, converged=True):
    outcome = MechanismOutcome(mechanism)
    for flips in flips_list:
        outcome.results.append(
            AttackResult(
                model_name="toy", mechanism=mechanism, accuracy_before=90.0,
                accuracy_after=accuracy, target_accuracy=15.0, num_flips=flips,
                converged=converged, accuracy_curve=[90.0] + [accuracy] * flips,
            )
        )
    return outcome


class TestAggregation:
    def test_mechanism_outcome_means(self):
        outcome = make_outcome("rowpress", [4, 6, 8])
        assert outcome.mean_flips == pytest.approx(6.0)
        assert outcome.mean_accuracy_after == pytest.approx(10.0)
        assert outcome.all_converged

    def test_empty_outcome(self):
        outcome = MechanismOutcome("rowhammer")
        assert np.isnan(outcome.mean_flips)
        assert not outcome.all_converged
        assert outcome.representative_curve == []

    def test_model_comparison_ratio_and_row(self):
        result = ModelComparisonResult(
            model_key="resnet20", display_name="ResNet-20", dataset_name="CIFAR-10",
            num_parameters=1000, clean_accuracy=90.0, random_guess_accuracy=10.0,
            rowhammer=make_outcome("rowhammer", [30]),
            rowpress=make_outcome("rowpress", [10]),
        )
        assert result.flip_ratio == pytest.approx(3.0)
        row = result.as_row()
        assert row["architecture"] == "ResNet-20"
        assert row["rowhammer_bit_flips"] == 30
        assert row["flip_ratio"] == 3.0

    def test_flip_ratio_nan_when_neither_mechanism_flips(self):
        result = ModelComparisonResult(
            "a", "A", "d", 1, 90, 10,
            make_outcome("rowhammer", [0]), make_outcome("rowpress", [0]),
        )
        assert np.isnan(result.flip_ratio)
        # and the rendered row keeps the nan (report writers print '-')
        assert np.isnan(result.as_row()["flip_ratio"])

    def test_flip_ratio_inf_when_only_rowpress_needs_none(self):
        result = ModelComparisonResult(
            "a", "A", "d", 1, 90, 10,
            make_outcome("rowhammer", [5]), make_outcome("rowpress", [0]),
        )
        assert np.isinf(result.flip_ratio)

    def test_average_flip_ratio_skips_undefined_ratios(self):
        results = [
            ModelComparisonResult("a", "A", "d", 1, 90, 10,
                                  make_outcome("rowhammer", [30]), make_outcome("rowpress", [10])),
            ModelComparisonResult("b", "B", "d", 1, 90, 10,
                                  make_outcome("rowhammer", [0]), make_outcome("rowpress", [0])),
            ModelComparisonResult("c", "C", "d", 1, 90, 10,
                                  make_outcome("rowhammer", [5]), make_outcome("rowpress", [0])),
        ]
        assert average_flip_ratio(results) == pytest.approx(3.0)

    def test_average_flip_ratio(self):
        results = [
            ModelComparisonResult("a", "A", "d", 1, 90, 10,
                                  make_outcome("rowhammer", [40]), make_outcome("rowpress", [10])),
            ModelComparisonResult("b", "B", "d", 1, 90, 10,
                                  make_outcome("rowhammer", [20]), make_outcome("rowpress", [10])),
        ]
        assert average_flip_ratio(results) == pytest.approx(3.0)

    def test_comparison_config_validation(self):
        with pytest.raises(ValueError):
            ComparisonConfig(repetitions=0)


class TestDeploymentProfiles:
    def test_profiles_cover_the_deployment_address_space(self):
        profiles = build_deployment_profiles(seed=1)
        from repro.core.mapping import DNN_DEPLOYMENT_GEOMETRY

        assert profiles.rowhammer.capacity_bits == DNN_DEPLOYMENT_GEOMETRY.total_cells
        assert profiles.rowpress.capacity_bits == DNN_DEPLOYMENT_GEOMETRY.total_cells

    def test_rowpress_profile_denser_with_low_overlap(self):
        profiles = build_deployment_profiles(seed=1)
        stats = profiles.statistics()
        assert stats["rp_cells"] > stats["rh_cells"] * 2
        assert stats["overlap_fraction_of_union"] < 0.005

    def test_deterministic_for_seed(self):
        a = build_deployment_profiles(seed=4)
        b = build_deployment_profiles(seed=4)
        assert np.array_equal(a.rowpress.flat_indices, b.rowpress.flat_indices)


@pytest.mark.slow
class TestEndToEndComparison:
    def test_single_model_comparison_shape(self):
        profiles = build_deployment_profiles(seed=5)
        config = ComparisonConfig(
            repetitions=1,
            search=BitSearchConfig(max_flips=40, top_k_layers=4, eval_batch_size=48),
            eval_samples=48,
            training_epochs=3,
            seed=5,
        )
        result = compare_mechanisms_for_model(get_spec("resnet20"), profiles, config)
        assert result.model_key == "resnet20"
        assert result.clean_accuracy > result.random_guess_accuracy
        assert result.rowhammer.mean_flips > 0
        assert result.rowpress.mean_flips > 0
        assert len(result.rowpress.representative_curve) >= 2
