"""Tests for the weight-bit -> DRAM-cell mapping."""

import numpy as np
import pytest

from repro.core.mapping import DNN_DEPLOYMENT_GEOMETRY, WeightBitMapping
from repro.dram.geometry import DramGeometry
from repro.faults.profiles import BitFlipProfile
from repro.nn.quantization import QuantizedTensorInfo


def infos():
    return [
        QuantizedTensorInfo(name="layer1.weight", shape=(4, 4), num_weights=16, num_bits=8, scale=0.01),
        QuantizedTensorInfo(name="layer2.weight", shape=(2, 8), num_weights=16, num_bits=8, scale=0.02),
    ]


class TestLayout:
    def test_contiguous_spans(self):
        mapping = WeightBitMapping(infos(), capacity_bits=10_000)
        start1, end1 = mapping.tensor_span("layer1.weight")
        start2, end2 = mapping.tensor_span("layer2.weight")
        assert (start1, end1) == (0, 128)
        assert (start2, end2) == (128, 256)
        assert mapping.total_bits == 256

    def test_base_offset(self):
        mapping = WeightBitMapping(infos(), capacity_bits=10_000, base_offset_bits=100)
        assert mapping.tensor_span("layer1.weight") == (100, 228)
        assert mapping.occupied_addresses() == (100, 356)

    def test_capacity_overflow_rejected(self):
        with pytest.raises(ValueError):
            WeightBitMapping(infos(), capacity_bits=200)

    def test_empty_infos_rejected(self):
        with pytest.raises(ValueError):
            WeightBitMapping([], capacity_bits=100)

    def test_flat_address_roundtrip(self):
        mapping = WeightBitMapping(infos(), capacity_bits=10_000, base_offset_bits=64)
        flat = mapping.flat_address("layer2.weight", weight_index=3, bit=5)
        assert mapping.locate(flat) == ("layer2.weight", 3, 5)

    def test_locate_outside_model_returns_none(self):
        mapping = WeightBitMapping(infos(), capacity_bits=10_000)
        assert mapping.locate(9_999) is None

    def test_flat_address_validation(self):
        mapping = WeightBitMapping(infos(), capacity_bits=10_000)
        with pytest.raises(KeyError):
            mapping.flat_address("unknown.weight", 0, 0)
        with pytest.raises(IndexError):
            mapping.flat_address("layer1.weight", 16, 0)
        with pytest.raises(IndexError):
            mapping.flat_address("layer1.weight", 0, 8)


class TestProfileIntersection:
    def test_candidates_land_in_correct_tensor(self):
        mapping = WeightBitMapping(infos(), capacity_bits=1000)
        # Vulnerable cells: bit 5 of weight 0 in layer1, bit 7 of weight 15 in layer2,
        # and one address outside the model.
        profile = BitFlipProfile(
            mechanism="rowpress",
            flat_indices=np.array([5, 128 + 15 * 8 + 7, 900]),
            directions=np.array([1, 0, 0], dtype=np.int8),
            capacity_bits=1000,
        )
        candidates = mapping.candidates_from_profile(profile)
        assert set(candidates) == {"layer1.weight", "layer2.weight"}
        layer1 = candidates["layer1.weight"]
        assert layer1.weight_indices.tolist() == [0]
        assert layer1.bit_positions.tolist() == [5]
        assert layer1.directions.tolist() == [1]
        layer2 = candidates["layer2.weight"]
        assert layer2.weight_indices.tolist() == [15]
        assert layer2.bit_positions.tolist() == [7]

    def test_total_candidates_counts_only_model_bits(self):
        mapping = WeightBitMapping(infos(), capacity_bits=1000)
        profile = BitFlipProfile("rowpress", np.array([0, 100, 400, 999]),
                                 np.zeros(4, dtype=np.int8), 1000)
        assert mapping.total_candidates(profile) == 2

    def test_profile_capacity_mismatch_rejected(self):
        mapping = WeightBitMapping(infos(), capacity_bits=1000)
        small_profile = BitFlipProfile("rowpress", np.array([1]), np.array([0], dtype=np.int8), 100)
        with pytest.raises(ValueError):
            mapping.candidates_from_profile(small_profile)

    def test_candidate_density_tracks_profile_density(self):
        big_infos = [QuantizedTensorInfo("w", (1000,), 1000, 8, 0.01)]
        mapping = WeightBitMapping(big_infos, capacity_bits=100_000)
        dense = BitFlipProfile.synthetic("rowpress", 100_000, 0.05, 0.5, seed=0)
        sparse = BitFlipProfile.synthetic("rowhammer", 100_000, 0.005, 0.5, seed=0)
        assert mapping.total_candidates(dense) > mapping.total_candidates(sparse)


class TestPlacement:
    def test_for_model_infos_random_offset_is_reproducible(self):
        a = WeightBitMapping.for_model_infos(infos(), seed=5)
        b = WeightBitMapping.for_model_infos(infos(), seed=5)
        assert a.base_offset_bits == b.base_offset_bits

    def test_for_model_infos_without_seed_is_offset_zero(self):
        mapping = WeightBitMapping.for_model_infos(infos())
        assert mapping.base_offset_bits == 0

    def test_default_geometry_large_enough_for_roster(self):
        # The deployment address space must hold the largest surrogate
        # (ResNet-101, ~0.7 M weights -> ~5.5 M bits).
        assert DNN_DEPLOYMENT_GEOMETRY.total_cells > 6_000_000

    def test_model_too_large_rejected(self):
        huge = [QuantizedTensorInfo("w", (10,), 10, 8, 1.0)]
        tiny_geometry = DramGeometry(num_banks=1, rows_per_bank=1, cols_per_row=16)
        with pytest.raises(ValueError):
            WeightBitMapping.for_model_infos(huge, geometry=tiny_geometry)
