"""Tests for the untargeted attack objective (and the base-class dispatch)."""

import numpy as np
import pytest

from repro.core.objective import AttackObjective, ObjectiveMetrics, UntargetedDegradation


def make_objective(**overrides):
    defaults = dict(
        attack_x=np.zeros((4, 3, 8, 8)),
        attack_y=np.zeros(4, dtype=np.int64),
        eval_x=np.zeros((6, 3, 8, 8)),
        eval_y=np.zeros(6, dtype=np.int64),
        random_guess_accuracy=10.0,
    )
    defaults.update(overrides)
    return UntargetedDegradation(**defaults)


class TestTargetAccuracy:
    def test_target_is_max_of_absolute_and_relative_slack(self):
        objective = make_objective(tolerance=2.0, relative_factor=2.0)
        assert objective.target_accuracy == pytest.approx(20.0)
        objective = make_objective(tolerance=8.0, relative_factor=1.1)
        assert objective.target_accuracy == pytest.approx(18.0)

    def test_is_satisfied(self):
        objective = make_objective(tolerance=2.0, relative_factor=1.5)
        assert objective.is_satisfied(14.9)
        assert not objective.is_satisfied(15.1)

    def test_is_satisfied_accepts_metrics(self):
        objective = make_objective(tolerance=2.0, relative_factor=1.5)
        assert objective.is_satisfied(ObjectiveMetrics(accuracy=14.9))
        assert not objective.is_satisfied(ObjectiveMetrics(accuracy=15.1))

    def test_describe_mentions_levels(self):
        text = make_objective().describe()
        assert "random guess" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            make_objective(random_guess_accuracy=0.0)
        with pytest.raises(ValueError):
            make_objective(relative_factor=0.5)
        with pytest.raises(ValueError):
            make_objective(attack_y=np.zeros(3, dtype=np.int64))


class TestFromDataset:
    def test_base_class_dispatches_to_untargeted(self, tiny_dataset):
        """Pre-refactor call sites keep working through the base class."""
        objective = AttackObjective.from_dataset(tiny_dataset, attack_batch_size=8, seed=3)
        assert isinstance(objective, UntargetedDegradation)
        assert objective.kind == "untargeted"

    def test_sizes_and_pool(self, tiny_dataset):
        objective = AttackObjective.from_dataset(tiny_dataset, attack_batch_size=8, eval_samples=12, seed=3)
        assert objective.attack_x.shape[0] == 8
        assert objective.eval_x.shape[0] == 12
        assert objective.attack_pool_x is tiny_dataset.test_x
        assert objective.random_guess_accuracy == pytest.approx(tiny_dataset.random_guess_accuracy)

    def test_eval_defaults_to_full_test_set(self, tiny_dataset):
        objective = AttackObjective.from_dataset(tiny_dataset, attack_batch_size=4)
        assert objective.eval_x.shape[0] == tiny_dataset.test_x.shape[0]

    def test_resample_changes_batch(self, tiny_dataset):
        objective = AttackObjective.from_dataset(tiny_dataset, attack_batch_size=8, seed=3)
        before = objective.attack_x.copy()
        assert objective.resample_attack_batch()
        assert objective.attack_x.shape == before.shape
        assert not np.allclose(objective.attack_x, before)

    def test_resample_without_pool_returns_false(self):
        objective = make_objective()
        assert not objective.resample_attack_batch()


class TestModelEvaluation:
    def test_loss_and_gradients_populate_grads(self, tiny_quantized_model, tiny_dataset):
        model, _ = tiny_quantized_model
        objective = AttackObjective.from_dataset(tiny_dataset, attack_batch_size=8, seed=0)
        loss = objective.attack_loss_and_gradients(model)
        assert loss > 0
        assert any(p.grad is not None for p in model.parameters())

    def test_attack_loss_matches_loss_with_gradients(self, tiny_quantized_model, tiny_dataset):
        model, _ = tiny_quantized_model
        objective = AttackObjective.from_dataset(tiny_dataset, attack_batch_size=8, seed=0)
        with_grad = objective.attack_loss_and_gradients(model)
        forward_only = objective.attack_loss(model)
        assert forward_only == pytest.approx(with_grad, rel=1e-9)

    def test_evaluation_accuracy_in_range(self, tiny_quantized_model, tiny_dataset):
        model, _ = tiny_quantized_model
        objective = AttackObjective.from_dataset(tiny_dataset, seed=0)
        accuracy = objective.evaluation_accuracy(model)
        assert 0.0 <= accuracy <= 100.0
