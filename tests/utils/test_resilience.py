"""Resilience primitives: retry determinism, deadlines, breakers, config."""

import pytest

from repro.utils.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    ResilienceConfig,
    RetryPolicy,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRetryPolicy:
    def test_delays_are_seed_deterministic(self):
        policy = RetryPolicy(max_attempts=6, seed=42)
        assert list(policy.delays()) == list(policy.delays())
        assert list(RetryPolicy(max_attempts=6, seed=42).delays()) == list(policy.delays())
        assert list(RetryPolicy(max_attempts=6, seed=43).delays()) != list(policy.delays())

    def test_delays_bounded_by_max_delay_and_jitter(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, multiplier=10.0, max_delay=5.0, jitter=0.1
        )
        for delay in policy.delays():
            assert delay <= 5.0 * 1.1

    def test_call_retries_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        slept = []
        result = RetryPolicy(max_attempts=5).call(flaky, sleep=slept.append)
        assert result == "ok"
        assert len(attempts) == 3
        assert len(slept) == 2

    def test_call_exhausts_attempts_and_reraises(self):
        def always():
            raise OSError("permanent")

        with pytest.raises(OSError, match="permanent"):
            RetryPolicy(max_attempts=3).call(always, sleep=lambda _: None)

    def test_call_does_not_retry_unlisted_exceptions(self):
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).call(boom, sleep=lambda _: None)
        assert len(calls) == 1

    def test_call_stops_at_deadline(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        calls = []

        def failing():
            calls.append(1)
            clock.advance(2.0)  # past the deadline after the first try
            raise OSError("slow failure")

        with pytest.raises(OSError):
            RetryPolicy(max_attempts=5).call(
                failing, sleep=lambda _: None, deadline=deadline
            )
        assert len(calls) == 1

    def test_on_retry_callback_sees_each_failure(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise OSError("again")
            return True

        RetryPolicy(max_attempts=4).call(
            flaky, sleep=lambda _: None, on_retry=lambda a, e: seen.append((a, str(e)))
        )
        assert [a for a, _ in seen] == [0, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        assert deadline.remaining() == pytest.approx(5.0)
        clock.advance(3.0)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired()
        clock.advance(3.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded):
            deadline.check("chunk")

    def test_unlimited_never_expires(self):
        deadline = Deadline.unlimited()
        assert deadline.remaining() == float("inf")
        assert not deadline.expired()
        deadline.check()  # never raises

    def test_extend_pushes_expiry(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(0.9)
        deadline.extend(2.0)
        clock.advance(1.0)
        assert not deadline.expired()


class TestCircuitBreaker:
    def test_opens_at_threshold_and_recovers(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10.0, clock=clock)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        with pytest.raises(CircuitOpenError):
            breaker.check("worker")
        clock.advance(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the single half-open probe
        assert not breaker.allow()  # concurrent probes refused
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_half_open_retrip_restarts_the_full_reset_window(self):
        # A failed probe must not leave a shortened (or already-elapsed)
        # window behind: the re-trip restarts reset_timeout from the
        # moment the probe failed, not from the original trip.
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=clock)
        breaker.record_failure()  # trips at t=0
        clock.advance(5.0)  # t=5: half-open
        assert breaker.allow()
        breaker.record_failure()  # probe fails: re-trips at t=5
        clock.advance(4.9)  # t=9.9: still inside the restarted window
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        clock.advance(0.1)  # t=10: a full reset_timeout after the re-trip
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED


class TestResilienceConfig:
    def test_defaults(self):
        config = ResilienceConfig()
        assert config.connect_timeout == 60.0
        assert config.dial_timeout == 30.0
        assert config.max_chunk_retries == 3
        assert config.fallback_backend is None

    def test_from_env_reads_repro_variables(self):
        env = {
            "REPRO_CONNECT_TIMEOUT": "7.5",
            "REPRO_DIAL_RETRIES": "9",
            "REPRO_MAX_CHUNK_RETRIES": "1",
            "REPRO_FALLBACK_BACKEND": "thread",
        }
        config = ResilienceConfig.from_env(env)
        assert config.connect_timeout == 7.5
        assert config.dial_retries == 9
        assert config.max_chunk_retries == 1
        assert config.fallback_backend == "thread"
        # Unset fields keep their defaults.
        assert config.heartbeat_timeout == 30.0

    def test_overrides_beat_env(self):
        env = {"REPRO_CONNECT_TIMEOUT": "7.5"}
        config = ResilienceConfig.from_env(env, connect_timeout=1.0)
        assert config.connect_timeout == 1.0
        # A None override means "not specified", not "disable".
        assert ResilienceConfig.from_env(env, connect_timeout=None).connect_timeout == 7.5

    def test_zero_chunk_timeout_disables_the_bound(self):
        assert ResilienceConfig.from_env({}, chunk_timeout=0).chunk_timeout is None
        assert ResilienceConfig.from_env({"REPRO_CHUNK_TIMEOUT": "0"}).chunk_timeout is None

    def test_falsy_overrides_still_beat_env(self):
        # 0 is an explicit value, not "unspecified": it must win over the
        # environment for every field (and disable where 0 means off).
        env = {"REPRO_CHUNK_TIMEOUT": "120", "REPRO_MAX_CHUNK_RETRIES": "5"}
        config = ResilienceConfig.from_env(env, chunk_timeout=0, max_chunk_retries=0)
        assert config.chunk_timeout is None  # 0 override disables, env ignored
        assert config.max_chunk_retries == 0  # 0 retries, not env's 5
        # Only None means "fall through to the environment".
        assert ResilienceConfig.from_env(env, chunk_timeout=None).chunk_timeout == 120.0

    def test_empty_fallback_disables_degradation(self):
        env = {"REPRO_FALLBACK_BACKEND": "serial"}
        assert ResilienceConfig.from_env(env).fallback_backend == "serial"
        assert ResilienceConfig.from_env(env, fallback_backend="").fallback_backend is None
        assert ResilienceConfig.from_env(
            {"REPRO_FALLBACK_BACKEND": ""}
        ).fallback_backend is None

    def test_round_trip_and_unknown_fields(self):
        config = ResilienceConfig(connect_timeout=2.0, fallback_backend="serial")
        assert ResilienceConfig.from_dict(config.to_dict()) == config
        with pytest.raises(ValueError, match="unknown"):
            ResilienceConfig.from_dict({"bogus": 1})

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(max_chunk_retries=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(fallback_backend="carrier-pigeon")

    def test_factories(self):
        config = ResilienceConfig(
            dial_retries=4, dial_backoff=0.5, retry_seed=9,
            breaker_threshold=2, breaker_reset=1.5,
        )
        policy = config.retry_policy()
        assert policy.max_attempts == 4
        assert policy.base_delay == 0.5
        assert policy.seed == 9
        breaker = config.breaker()
        assert breaker.failure_threshold == 2
        assert breaker.reset_timeout == 1.5

    def test_replace_is_pure(self):
        config = ResilienceConfig()
        derived = config.replace(connect_timeout=1.0)
        assert derived.connect_timeout == 1.0
        assert config.connect_timeout == 60.0
