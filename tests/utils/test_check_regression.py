"""Tests for the perf regression gate (benchmarks/perf/check_regression.py)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "benchmarks" / "perf" / "check_regression.py"


@pytest.fixture(scope="module")
def check_regression():
    spec = importlib.util.spec_from_file_location("check_regression_under_test", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def payload(cases, schema_version=1, descriptions=None, compiled=None):
    """Build a benchmark payload; ``compiled`` maps case name -> compiled secs."""
    built = {}
    for name, (ref, vec) in cases.items():
        case = {
            "description": (descriptions or {}).get(name, name),
            "reference_seconds": ref,
            "vectorized_seconds": vec,
            "speedup": ref / vec,
        }
        comp = (compiled or {}).get(name)
        if comp is not None:
            case["compiled_seconds"] = comp
            case["compiled_speedup"] = vec / comp
        built[name] = case
    return {"schema_version": schema_version, "cases": built, "profile": "quick"}


def run_gate(check_regression, monkeypatch, tmp_path, baseline, fresh, *extra):
    baseline_path = tmp_path / "baseline.json"
    fresh_path = tmp_path / "fresh.json"
    baseline_path.write_text(baseline if isinstance(baseline, str) else json.dumps(baseline))
    fresh_path.write_text(fresh if isinstance(fresh, str) else json.dumps(fresh))
    monkeypatch.setattr(
        sys, "argv",
        ["check_regression.py", "--baseline", str(baseline_path), "--fresh", str(fresh_path),
         *extra],
    )
    return check_regression.main()


class TestRegressionGate:
    def test_all_within_budget_passes(self, check_regression, monkeypatch, tmp_path):
        baseline = payload({"a": (4.0, 1.0), "b": (6.0, 1.0)})
        fresh = payload({"a": (3.0, 1.0), "b": (5.0, 1.0)})
        assert run_gate(check_regression, monkeypatch, tmp_path, baseline, fresh) == 0

    def test_below_threshold_regression_fails(self, check_regression, monkeypatch, tmp_path):
        baseline = payload({"a": (4.0, 1.0)})  # 4.0x committed
        fresh = payload({"a": (1.5, 1.0)})  # 1.5x < 4.0 / 2
        assert run_gate(check_regression, monkeypatch, tmp_path, baseline, fresh) == 1

    def test_exactly_at_floor_passes(self, check_regression, monkeypatch, tmp_path):
        baseline = payload({"a": (4.0, 1.0)})
        fresh = payload({"a": (2.0, 1.0)})  # exactly baseline / 2
        assert run_gate(check_regression, monkeypatch, tmp_path, baseline, fresh) == 0

    def test_missing_case_in_fresh_fails(self, check_regression, monkeypatch, tmp_path):
        baseline = payload({"a": (4.0, 1.0), "gone": (2.0, 1.0)})
        fresh = payload({"a": (4.0, 1.0)})
        assert run_gate(check_regression, monkeypatch, tmp_path, baseline, fresh) == 1

    def test_newly_added_case_without_baseline_passes(
        self, check_regression, monkeypatch, tmp_path, capsys
    ):
        """A fresh-only case has nothing to regress against — noted, not fatal."""
        baseline = payload({"a": (4.0, 1.0)})
        fresh = payload({"a": (4.0, 1.0), "new_case": (3.0, 1.0)})
        assert run_gate(check_regression, monkeypatch, tmp_path, baseline, fresh) == 0
        assert "new case, no committed baseline" in capsys.readouterr().out

    def test_malformed_baseline_json_is_unusable(self, check_regression, monkeypatch, tmp_path):
        fresh = payload({"a": (4.0, 1.0)})
        assert run_gate(check_regression, monkeypatch, tmp_path, "{not json", fresh) == 2

    def test_baseline_without_cases_object_is_unusable(
        self, check_regression, monkeypatch, tmp_path
    ):
        fresh = payload({"a": (4.0, 1.0)})
        assert run_gate(
            check_regression, monkeypatch, tmp_path, {"schema_version": 1}, fresh
        ) == 2

    def test_case_without_speedup_is_unusable(self, check_regression, monkeypatch, tmp_path):
        fresh = payload({"a": (4.0, 1.0)})
        truncated = {"schema_version": 1, "cases": {"a": {"reference_seconds": 4.0}}}
        assert run_gate(check_regression, monkeypatch, tmp_path, truncated, fresh) == 2

    def test_schema_mismatch_is_unusable(self, check_regression, monkeypatch, tmp_path):
        baseline = payload({"a": (4.0, 1.0)}, schema_version=1)
        fresh = payload({"a": (4.0, 1.0)}, schema_version=2)
        assert run_gate(check_regression, monkeypatch, tmp_path, baseline, fresh) == 2

    def test_custom_max_regression_factor(self, check_regression, monkeypatch, tmp_path):
        baseline = payload({"a": (4.0, 1.0)})
        fresh = payload({"a": (2.5, 1.0)})  # 2.5x: fails /1.2, passes /2
        assert run_gate(
            check_regression, monkeypatch, tmp_path, baseline, fresh,
            "--max-regression", "1.2",
        ) == 1
        assert run_gate(
            check_regression, monkeypatch, tmp_path, baseline, fresh,
            "--max-regression", "2.0",
        ) == 0


class TestCompiledColumn:
    def test_compiled_regression_fails(self, check_regression, monkeypatch, tmp_path):
        baseline = payload({"a": (4.0, 1.0)}, compiled={"a": 0.25})  # 4.0x compiled
        fresh = payload({"a": (4.0, 1.0)}, compiled={"a": 1.0})  # 1.0x < 4.0 / 2
        assert run_gate(check_regression, monkeypatch, tmp_path, baseline, fresh) == 1

    def test_compiled_within_budget_passes(self, check_regression, monkeypatch, tmp_path):
        baseline = payload({"a": (4.0, 1.0)}, compiled={"a": 0.4})  # 2.5x
        fresh = payload({"a": (4.0, 1.0)}, compiled={"a": 0.5})  # 2.0x >= 2.5 / 2
        assert run_gate(check_regression, monkeypatch, tmp_path, baseline, fresh) == 0

    def test_toolchainless_fresh_run_is_not_gated(
        self, check_regression, monkeypatch, tmp_path, capsys
    ):
        """A fresh run without the compiled column (no toolchain) must pass."""
        baseline = payload({"a": (4.0, 1.0)}, compiled={"a": 0.25})
        fresh = payload({"a": (4.0, 1.0)})
        assert run_gate(check_regression, monkeypatch, tmp_path, baseline, fresh) == 0
        assert "no compiled column" in capsys.readouterr().out

    def test_new_compiled_column_without_baseline_passes(
        self, check_regression, monkeypatch, tmp_path, capsys
    ):
        baseline = payload({"a": (4.0, 1.0)})
        fresh = payload({"a": (4.0, 1.0)}, compiled={"a": 0.25})
        assert run_gate(check_regression, monkeypatch, tmp_path, baseline, fresh) == 0
        assert "new column, no committed baseline" in capsys.readouterr().out

    def test_non_numeric_compiled_column_is_unusable(
        self, check_regression, monkeypatch, tmp_path
    ):
        fresh = payload({"a": (4.0, 1.0)})
        bad = payload({"a": (4.0, 1.0)})
        bad["cases"]["a"]["compiled_seconds"] = "fast"
        assert run_gate(check_regression, monkeypatch, tmp_path, bad, fresh) == 2


class TestCaseSync:
    def _tracked(self):
        perf_dir = str(SCRIPT.parent)
        if perf_dir not in sys.path:
            sys.path.insert(0, perf_dir)
        from perf_cases import CASE_NAMES

        return CASE_NAMES

    def _descriptions(self):
        perf_dir = str(SCRIPT.parent)
        if perf_dir not in sys.path:
            sys.path.insert(0, perf_dir)
        from perf_cases import case_description, profile_sizes

        sizes = profile_sizes("quick")
        return {name: case_description(name, sizes) for name in self._tracked()}

    def test_committed_benchmark_matches_tracked_cases(self):
        """The repo's own BENCH_perf.json must never drift from perf_cases."""
        committed = json.loads((REPO_ROOT / "BENCH_perf.json").read_text())
        assert set(committed["cases"]) == set(self._tracked())

    def test_committed_benchmark_descriptions_are_derived(self):
        """Committed descriptions must equal the metadata-derived strings."""
        committed = json.loads((REPO_ROOT / "BENCH_perf.json").read_text())
        perf_dir = str(SCRIPT.parent)
        if perf_dir not in sys.path:
            sys.path.insert(0, perf_dir)
        from perf_cases import case_description, profile_sizes

        sizes = profile_sizes(committed.get("profile", "quick"))
        for name, case in committed["cases"].items():
            assert case["description"] == case_description(name, sizes), name

    def test_sync_flag_fails_on_baseline_drift(self, check_regression, monkeypatch, tmp_path):
        names = self._tracked()
        descriptions = self._descriptions()
        complete = payload({name: (4.0, 1.0) for name in names}, descriptions=descriptions)
        stale = payload({name: (4.0, 1.0) for name in names[:-1]}, descriptions=descriptions)
        assert run_gate(
            check_regression, monkeypatch, tmp_path, stale, complete, "--check-case-sync"
        ) == 1

    def test_sync_flag_fails_on_unknown_case(self, check_regression, monkeypatch, tmp_path):
        names = self._tracked()
        descriptions = self._descriptions()
        complete = payload({name: (4.0, 1.0) for name in names}, descriptions=descriptions)
        extra = payload(
            {**{name: (4.0, 1.0) for name in names}, "mystery": (2.0, 1.0)},
            descriptions=descriptions,
        )
        assert run_gate(
            check_regression, monkeypatch, tmp_path, extra, complete, "--check-case-sync"
        ) == 1

    def test_sync_flag_fails_on_description_drift(
        self, check_regression, monkeypatch, tmp_path, capsys
    ):
        """A hand-edited description must trip the sync gate."""
        descriptions = self._descriptions()
        complete = payload(
            {name: (4.0, 1.0) for name in self._tracked()}, descriptions=descriptions
        )
        drifted = json.loads(json.dumps(complete))
        first = sorted(drifted["cases"])[0]
        drifted["cases"][first]["description"] = "hand-edited text"
        assert run_gate(
            check_regression, monkeypatch, tmp_path, drifted, complete, "--check-case-sync"
        ) == 1
        assert "description drifted" in capsys.readouterr().out

    def test_sync_flag_fails_on_half_compiled_pair(
        self, check_regression, monkeypatch, tmp_path, capsys
    ):
        """compiled_seconds without compiled_speedup is a drift failure."""
        descriptions = self._descriptions()
        complete = payload(
            {name: (4.0, 1.0) for name in self._tracked()}, descriptions=descriptions
        )
        half = json.loads(json.dumps(complete))
        first = sorted(half["cases"])[0]
        half["cases"][first]["compiled_seconds"] = 1.0
        assert run_gate(
            check_regression, monkeypatch, tmp_path, half, complete, "--check-case-sync"
        ) == 1
        assert "compiled column pair" in capsys.readouterr().out

    def test_sync_flag_passes_when_in_sync(self, check_regression, monkeypatch, tmp_path):
        complete = payload(
            {name: (4.0, 1.0) for name in self._tracked()},
            descriptions=self._descriptions(),
        )
        assert run_gate(
            check_regression, monkeypatch, tmp_path, complete, complete, "--check-case-sync"
        ) == 0
