"""Tests for cycle/time/hammer-count conversions (Section VII-A)."""

import pytest

from repro.utils.units import (
    cycles_to_ms,
    cycles_to_seconds,
    hammer_counts_to_time_ms,
    ms_to_cycles,
    rowpress_cycles_to_equivalent_hammer_counts,
    time_ms_to_hammer_counts,
)


class TestCycleConversions:
    def test_paper_example_100m_cycles(self):
        # Section VII-A: 100 M cycles at 2400 MHz is ~41.67 ms.
        assert cycles_to_ms(100e6) == pytest.approx(41.6667, rel=1e-3)

    def test_roundtrip(self):
        assert ms_to_cycles(cycles_to_ms(123456)) == pytest.approx(123456, rel=1e-9)

    def test_seconds(self):
        assert cycles_to_seconds(2.4e9) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cycles_to_ms(-1)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            cycles_to_ms(10, frequency_mhz=0)


class TestHammerCountConversions:
    def test_paper_example_equivalent_hc(self):
        # Section VII-A: 41.67 ms corresponds to ~885.5 K hammer counts.
        hc = rowpress_cycles_to_equivalent_hammer_counts(100e6)
        assert hc == pytest.approx(885_416.7, rel=1e-3)

    def test_full_refresh_window_gives_max_hc(self):
        assert time_ms_to_hammer_counts(64.0) == pytest.approx(1.36e6)

    def test_roundtrip(self):
        time_ms = hammer_counts_to_time_ms(500_000)
        assert time_ms_to_hammer_counts(time_ms) == pytest.approx(500_000)

    def test_monotonic_in_time(self):
        assert time_ms_to_hammer_counts(10) < time_ms_to_hammer_counts(20)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            hammer_counts_to_time_ms(-5)
        with pytest.raises(ValueError):
            time_ms_to_hammer_counts(1.0, trefw_ms=0)
