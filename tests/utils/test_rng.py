"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    RngMixin,
    choice_without_replacement,
    derive_rng,
    hash_string,
    mix_seed,
    spawn_seeds,
)


class TestDeriveRng:
    def test_none_returns_generator(self):
        assert isinstance(derive_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = derive_rng(42).random(5)
        b = derive_rng(42).random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(1).random(5)
        b = derive_rng(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert derive_rng(rng) is rng


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        seeds_a = spawn_seeds(7, 5)
        seeds_b = spawn_seeds(7, 5)
        assert len(seeds_a) == 5
        assert seeds_a == seeds_b

    def test_children_are_distinct(self):
        seeds = spawn_seeds(3, 10)
        assert len(set(seeds)) == 10

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_zero_count(self):
        assert spawn_seeds(0, 0) == []


class TestMixSeed:
    def test_deterministic(self):
        assert mix_seed(1, "model", 3) == mix_seed(1, "model", 3)

    def test_component_sensitivity(self):
        assert mix_seed(1, "a") != mix_seed(1, "b")
        assert mix_seed(1, 2) != mix_seed(1, 3)

    def test_hash_string_stable(self):
        # FNV-1a of "abc" is a fixed published value.
        assert hash_string("abc") == 0x1A47E90B
        assert hash_string("") == 0x811C9DC5


class TestRngMixin:
    def test_lazy_rng_and_reseed(self):
        class Thing(RngMixin):
            def __init__(self, seed):
                self._init_rng(seed)

        thing = Thing(5)
        first = thing.rng.random()
        thing.reseed(5)
        assert thing.rng.random() == pytest.approx(first)


class TestChoiceWithoutReplacement:
    def test_unique_samples(self):
        rng = derive_rng(0)
        picks = choice_without_replacement(rng, range(100), 50)
        assert len(set(picks.tolist())) == 50

    def test_oversample_raises(self):
        rng = derive_rng(0)
        with pytest.raises(ValueError):
            choice_without_replacement(rng, range(5), 6)
