"""Tests for the validation helpers."""

import pytest

from repro.utils.validation import (
    check_in_range,
    check_index,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.5)

    @pytest.mark.parametrize("value", [0, -1, -0.001])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        check_probability("p", value)

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)


class TestCheckInRange:
    def test_accepts_bounds(self):
        check_in_range("x", 0, 0, 10)
        check_in_range("x", 10, 0, 10)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)


class TestCheckIndex:
    def test_accepts_valid_index(self):
        check_index("i", 0, 5)
        check_index("i", 4, 5)

    @pytest.mark.parametrize("value", [-1, 5, 100])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(IndexError):
            check_index("i", value, 5)
