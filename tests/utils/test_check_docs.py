"""The docs consistency checker (tools/check_docs.py) and its guarantees."""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
CHECKER = REPO_ROOT / "tools" / "check_docs.py"


def load_checker():
    spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCheckerPasses:
    def test_repo_docs_are_consistent(self):
        """The committed docs suite satisfies every check."""
        result = subprocess.run(
            [sys.executable, str(CHECKER)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "passed" in result.stdout


class TestCheckerCatches:
    def test_kind_table_parsing(self):
        checker = load_checker()
        text = (
            "# API\n\n"
            "| kind | spec class |\n| --- | --- |\n"
            "| `comparison` | `ComparisonSpec` |\n"
            "| `flip_sweep` | `FlipSweepSpec` |\n\n"
            "| other | table |\n| `not_a_kind` | x |\n"
        )
        assert checker.documented_kinds(text) == ["comparison", "flip_sweep"]

    def test_missing_kind_reported(self):
        checker = load_checker()
        # A kind table that documents only one kind must flag the rest.
        errors = checker.check_kinds("| kind |\n| --- |\n| `comparison` |\n")
        assert any("defense_matrix" in error for error in errors)

    def test_unknown_kind_reported(self):
        checker = load_checker()
        full = (REPO_ROOT / "docs" / "API.md").read_text()
        errors = checker.check_kinds(full + "\n| kind |\n| --- |\n| `imaginary_kind` |\n")
        assert any("imaginary_kind" in error for error in errors)

    def test_unmentioned_export_reported(self):
        checker = load_checker()
        errors = checker.check_exported_symbols("this text mentions nothing")
        assert errors  # every export is missing from that text

    def test_broken_link_detection_logic(self, tmp_path, monkeypatch):
        checker = load_checker()
        docs = tmp_path / "docs"
        docs.mkdir()
        (tmp_path / "README.md").write_text(
            "[ok](docs/REAL.md) and [broken](docs/GHOST.md) and [web](https://x.test/y.md)\n"
        )
        (docs / "REAL.md").write_text("hi\n")
        monkeypatch.setattr(checker, "REPO_ROOT", tmp_path)
        errors = checker.check_links()
        assert len(errors) == 1 and "GHOST.md" in errors[0]
