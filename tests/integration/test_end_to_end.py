"""End-to-end integration tests spanning multiple subsystems."""

import numpy as np
import pytest

from repro.core.bfa import BitSearchConfig
from repro.core.mapping import WeightBitMapping
from repro.core.objective import AttackObjective
from repro.core.profile_aware import DramProfileAwareAttack, ProfileAwareConfig
from repro.defenses import GrapheneDefense
from repro.dram.chip import DramChip
from repro.dram.controller import MemoryController
from repro.dram.geometry import DramGeometry
from repro.dram.vulnerability import VulnerabilityParameters
from repro.faults.profiler import ChipProfiler, ProfilingConfig
from repro.faults.rowhammer import RowHammerAttack, RowHammerConfig
from repro.faults.rowpress import RowPressAttack, RowPressConfig
from repro.nn.quantization import quantize_model


class TestProfileThenAttackPipeline:
    """The attacker's full workflow: profile a chip, then attack a model."""

    def test_profiled_chip_drives_profile_aware_attack(self, tiny_trained_model, tiny_dataset):
        # 1. Profile a simulated chip under both mechanisms.
        geometry = DramGeometry(num_banks=2, rows_per_bank=48, cols_per_row=2048)
        params = VulnerabilityParameters(rh_density=0.02, rp_density=0.15)
        chip = DramChip(geometry, vulnerability_parameters=params, seed=31)
        profiler = ChipProfiler(chip, ProfilingConfig(hammer_count=900_000, open_cycles=100_000_000,
                                                      row_stride=2))
        pair = profiler.profile()
        assert len(pair.rowpress) > len(pair.rowhammer)

        # 2. Deploy the quantized surrogate into the same address space and
        #    attack it with each profile.
        model, clean_state = tiny_trained_model

        def run(profile):
            model.load_state_dict(clean_state)
            infos = quantize_model(model)
            objective = AttackObjective.from_dataset(tiny_dataset, attack_batch_size=16,
                                                     eval_samples=24, seed=41)
            attack = DramProfileAwareAttack(
                model, objective, profile,
                config=ProfileAwareConfig(
                    search=BitSearchConfig(max_flips=10, top_k_layers=3, eval_batch_size=32),
                    geometry=geometry,
                ),
                tensor_infos=infos, model_name="tiny",
            )
            return attack.run()

        rowpress_result = run(pair.rowpress)
        rowhammer_result = run(pair.rowhammer)
        # The denser RowPress profile exposes more candidate weight bits.
        assert rowpress_result.candidate_bits > rowhammer_result.candidate_bits
        # Both attacks make progress (accuracy does not increase).
        assert rowpress_result.accuracy_after <= rowpress_result.accuracy_before
        assert rowhammer_result.accuracy_after <= rowhammer_result.accuracy_before


class TestDefenseInteractionWithAttacks:
    def test_defended_chip_blocks_rowhammer_but_not_rowpress(self):
        geometry = DramGeometry(num_banks=1, rows_per_bank=32, cols_per_row=512)
        params = VulnerabilityParameters(rh_density=0.05, rp_density=0.25)
        chip = DramChip(geometry, vulnerability_parameters=params, seed=7)

        defense = GrapheneDefense(mac_threshold=2048)
        controller = MemoryController(chip, defenses=[defense])

        rowhammer = RowHammerAttack(controller, RowHammerConfig(victim_row=8, hammer_count=700_000)).run()
        rowpress = RowPressAttack(controller, RowPressConfig(pressed_row=20, open_cycles=80_000_000)).run()

        assert rowhammer.num_flips == 0
        assert rowhammer.nrr_issued > 0
        assert rowpress.num_flips > 0
        assert rowpress.nrr_issued == 0


class TestWeightPlacementOnChip:
    def test_model_bits_round_trip_through_dram(self, tiny_quantized_model):
        """Deploy quantized weight bits into the simulated chip and read back."""
        from repro.nn.bitops import int_to_bits

        model, infos = tiny_quantized_model
        geometry = DramGeometry(num_banks=2, rows_per_bank=96, cols_per_row=2048)
        chip = DramChip(geometry, seed=3)
        mapping = WeightBitMapping(infos, capacity_bits=geometry.total_cells)
        # Deploy the first tensor's bits.
        info = infos[0]
        parameter = dict(model.named_parameters())[info.name]
        bits = int_to_bits(parameter.int_repr.ravel(), info.num_bits).ravel()
        start, end = mapping.tensor_span(info.name)
        assert end - start == bits.size
        chip.write_bits_flat(start, bits[: min(bits.size, 2048)])
        read_back = chip.read_bits_flat(start, min(bits.size, 2048))
        assert np.array_equal(read_back, bits[: min(bits.size, 2048)])
